//! Raw-log ingestion benchmark: events/s and GB/s of the zero-copy parser
//! and the full `acobe-ingest` pipeline against the naive line-by-line
//! `parse_record` baseline (one `Vec<String>` per record, flexible timestamp
//! parse — the reader this repository shipped before the borrowed-field
//! parser). Merges an `"ingest"` section into `BENCH_nn.json`.
//!
//! Usage: `cargo run --release -p acobe-bench --bin ingest_bench [--quick] [--out PATH]`

use acobe_bench::{arg_value, parse_args};
use acobe_ingest::IngestConfig;
use acobe_logs::csv::{parse_event, record_slices, RecordBuf, ToCsv};
use acobe_logs::event::*;
use acobe_logs::ids::{DomainId, FileId, HostId, UserId};
use acobe_logs::time::{Date, Timestamp};
use acobe_synth::cert::{CertConfig, CertGenerator};
use acobe_synth::org::OrgConfig;
use serde::Serialize;
use std::io::Cursor;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ParserThroughput {
    mode: String,
    threads: usize,
    secs: f64,
    events_per_s: f64,
    gb_per_s: f64,
    speedup_vs_naive: f64,
}

#[derive(Debug, Serialize)]
struct IngestReport {
    quick: bool,
    bytes: usize,
    events: usize,
    days: usize,
    naive: ParserThroughput,
    zero_copy: ParserThroughput,
    pipeline: Vec<ParserThroughput>,
}

/// Synthesizes a raw CSV fixture in memory: the exact bytes `acobe synth
/// --raw-out` writes (each day sorted by timestamp).
fn fixture(
    users_per_dept: usize,
    departments: usize,
    span_days: i32,
    seed: u64,
) -> (String, usize, usize) {
    let mut config = CertConfig::small(seed);
    config.org = OrgConfig {
        departments,
        users_per_dept,
        seed: 0x0a6,
    };
    config.end = config.start.add_days(span_days).min(config.end);
    let start = config.start;
    let end = config.end;
    let mut generator = CertGenerator::new(config);
    let mut text = String::new();
    let mut events = 0usize;
    let mut days = 0usize;
    for date in start.range_to(end) {
        let mut day = generator.generate_day(date);
        day.sort_by_key(|e| e.ts());
        for event in &day {
            text.push_str(&event.to_csv());
            text.push('\n');
        }
        events += day.len();
        days += 1;
    }
    (text, events, days)
}

/// The record splitter this repository shipped before the zero-copy parser:
/// a char-by-char state machine accumulating every field into a fresh
/// `String` inside a fresh `Vec` (verbatim from the seed's `csv.rs`, kept
/// here so the baseline stays fixed as the library's splitter improves).
fn naive_parse_record(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return None;
                }
                fields.push(cur);
                return Some(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cur.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            Some(ch) => cur.push(ch),
        }
    }
}

/// The flexible `YYYY-MM-DD HH:MM:SS` timestamp parse the old reader used
/// (no fixed-width digit fast path).
fn naive_ts(s: &str) -> Option<Timestamp> {
    let (date_part, time_part) = s.split_once(' ')?;
    let date = Date::parse(date_part).ok()?;
    let mut it = time_part.splitn(3, ':');
    let h: u32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let sec: u32 = it.next()?.parse().ok()?;
    if h >= 24 || m >= 60 || sec >= 60 {
        return None;
    }
    Some(date.at(h, m, sec))
}

fn naive_loc(s: &str) -> Option<Location> {
    match s {
        "Local" => Some(Location::Local),
        "Remote" => Some(Location::Remote),
        _ => None,
    }
}

/// Decodes one record from owned fields, mirroring the pre-zero-copy reader:
/// every value parse goes through `str::parse` on a per-record `String`.
fn naive_event(f: &[String]) -> Option<LogEvent> {
    match f.first().map(String::as_str)? {
        "device" if f.len() == 5 => {
            let activity = match f[4].as_str() {
                "Connect" => DeviceActivity::Connect,
                "Disconnect" => DeviceActivity::Disconnect,
                _ => return None,
            };
            Some(LogEvent::Device(DeviceEvent {
                ts: naive_ts(&f[1])?,
                user: UserId(f[2].parse().ok()?),
                host: HostId(f[3].parse().ok()?),
                activity,
            }))
        }
        "file" if f.len() == 8 => {
            let activity = match f[5].as_str() {
                "Open" => FileActivity::Open,
                "Write" => FileActivity::Write,
                "Copy" => FileActivity::Copy,
                "Delete" => FileActivity::Delete,
                _ => return None,
            };
            Some(LogEvent::File(FileEvent {
                ts: naive_ts(&f[1])?,
                user: UserId(f[2].parse().ok()?),
                host: HostId(f[3].parse().ok()?),
                file: FileId(f[4].parse().ok()?),
                activity,
                from: naive_loc(&f[6])?,
                to: naive_loc(&f[7])?,
            }))
        }
        "http" if f.len() == 7 => {
            let activity = match f[4].as_str() {
                "Visit" => HttpActivity::Visit,
                "Download" => HttpActivity::Download,
                "Upload" => HttpActivity::Upload,
                _ => return None,
            };
            let filetype = match f[5].as_str() {
                "doc" => FileType::Doc,
                "exe" => FileType::Exe,
                "jpg" => FileType::Jpg,
                "pdf" => FileType::Pdf,
                "txt" => FileType::Txt,
                "zip" => FileType::Zip,
                "other" => FileType::Other,
                _ => return None,
            };
            Some(LogEvent::Http(HttpEvent {
                ts: naive_ts(&f[1])?,
                user: UserId(f[2].parse().ok()?),
                domain: DomainId(f[3].parse().ok()?),
                activity,
                filetype,
                success: f[6] == "1",
            }))
        }
        "email" if f.len() == 6 => Some(LogEvent::Email(EmailEvent {
            ts: naive_ts(&f[1])?,
            user: UserId(f[2].parse().ok()?),
            recipients: f[3].parse().ok()?,
            size: f[4].parse().ok()?,
            attachment: f[5] == "1",
        })),
        "logon" if f.len() == 6 => {
            let activity = match f[4].as_str() {
                "Logon" => LogonActivity::Logon,
                "Logoff" => LogonActivity::Logoff,
                _ => return None,
            };
            Some(LogEvent::Logon(LogonEvent {
                ts: naive_ts(&f[1])?,
                user: UserId(f[2].parse().ok()?),
                host: HostId(f[3].parse().ok()?),
                activity,
                success: f[5] == "1",
            }))
        }
        _ => None,
    }
}

/// Runs `f` `reps` times and keeps the best wall clock (least scheduler
/// noise); `f` returns `(events, checksum)` to keep the work observable.
fn best_of<F: FnMut() -> (usize, u64)>(reps: usize, mut f: F) -> (f64, usize, u64) {
    let mut best = f64::INFINITY;
    let mut out = (0usize, 0u64);
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out.0, out.1)
}

fn throughput(
    mode: &str,
    threads: usize,
    bytes: usize,
    secs: f64,
    events: usize,
    naive_secs: f64,
) -> ParserThroughput {
    ParserThroughput {
        mode: mode.to_string(),
        threads,
        secs,
        events_per_s: events as f64 / secs,
        gb_per_s: bytes as f64 / secs / 1e9,
        speedup_vs_naive: naive_secs / secs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let quick = arg_value(&parsed, "quick").is_some();
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    let out_path = arg_value(&parsed, "out").unwrap_or(default_out).to_string();

    let (users_per_dept, departments, span_days) = if quick { (12, 2, 21) } else { (48, 4, 90) };
    let reps = if quick { 2 } else { 3 };
    let (text, events, days) = fixture(users_per_dept, departments, span_days, 11);
    let bytes = text.len();
    println!(
        "fixture: {} users x {days} days, {events} events, {:.1} MB",
        users_per_dept * departments,
        bytes as f64 / 1e6
    );

    // Baseline: line-by-line `parse_record` into a fresh `Vec<String>` per
    // record, then decode from the owned fields — the old reader's cost model.
    let (naive_secs, naive_events, naive_check) = best_of(reps, || {
        let mut count = 0usize;
        let mut check = 0u64;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let fields = naive_parse_record(line).expect("well-formed fixture");
            let event = naive_event(&fields).expect("known category");
            count += 1;
            check = check.wrapping_add(u64::from(event.user().0));
        }
        (count, check)
    });
    assert_eq!(naive_events, events);
    let naive = throughput(
        "naive_parse_record",
        1,
        bytes,
        naive_secs,
        events,
        naive_secs,
    );
    println!(
        "naive   : {:.3}s, {:.0} events/s, {:.3} GB/s",
        naive.secs, naive.events_per_s, naive.gb_per_s
    );

    // Zero-copy single-thread parse: record-slice iteration plus one reused
    // `RecordBuf`, no batching or routing — the parser in isolation.
    let (zc_secs, zc_events, zc_check) = best_of(reps, || {
        let mut count = 0usize;
        let mut check = 0u64;
        let mut buf = RecordBuf::new();
        for record in record_slices(text.as_bytes()) {
            if record.is_empty() {
                continue;
            }
            let line = std::str::from_utf8(record).expect("utf-8 fixture");
            let event = parse_event(line, &mut buf).expect("well-formed fixture");
            count += 1;
            check = check.wrapping_add(u64::from(event.user().0));
        }
        (count, check)
    });
    assert_eq!(zc_events, events);
    assert_eq!(zc_check, naive_check);
    let zero_copy = throughput("zero_copy_parse", 1, bytes, zc_secs, events, naive_secs);
    println!(
        "zerocopy: {:.3}s, {:.0} events/s, {:.3} GB/s ({:.1}x naive)",
        zero_copy.secs, zero_copy.events_per_s, zero_copy.gb_per_s, zero_copy.speedup_vs_naive
    );

    // Full pipeline: chunking, parse workers, day batching and ordered
    // delivery through the bounded queues, at several worker counts.
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let mut pipeline = Vec::new();
    for &threads in thread_counts {
        let config = IngestConfig {
            threads,
            ..IngestConfig::default()
        };
        let (secs, count, check) = best_of(reps, || {
            let mut count = 0usize;
            let mut check = 0u64;
            let stats =
                acobe_ingest::ingest_events(Cursor::new(text.as_bytes()), &config, |batch| {
                    for event in &batch.events {
                        count += 1;
                        check = check.wrapping_add(u64::from(event.user().0));
                    }
                    Ok::<(), std::convert::Infallible>(())
                })
                .expect("ingest fixture");
            assert_eq!(stats.parse_errors, 0);
            (count, check)
        });
        assert_eq!(count, events);
        assert_eq!(check, naive_check);
        let r = throughput("pipeline", threads, bytes, secs, events, naive_secs);
        println!(
            "pipeline: {threads} threads: {:.3}s, {:.0} events/s, {:.3} GB/s ({:.1}x naive)",
            r.secs, r.events_per_s, r.gb_per_s, r.speedup_vs_naive
        );
        pipeline.push(r);
    }

    let report = IngestReport {
        quick,
        bytes,
        events,
        days,
        naive,
        zero_copy,
        pipeline,
    };
    let mut root: serde_json::Value = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    root["ingest"] = serde_json::to_value(&report).expect("serialize ingest report");
    let json = serde_json::to_string_pretty(&root).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_nn.json");
    println!("merged ingest section into {out_path}");
}
