//! Compute-core benchmark: measures the blocked matmul kernel, training
//! throughput, and end-to-end detection wall time against the pre-existing
//! reference kernel, and writes the results to `BENCH_nn.json` at the
//! workspace root.
//!
//! Usage: `cargo run --release -p acobe-bench --bin nn_bench [--quick] [--out PATH]`
//!
//! `--quick` shrinks every workload for CI smoke runs. The kernel toggle is
//! process-global, so this binary is the only place the reference kernel is
//! ever switched on.

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_bench::{arg_value, build_cert_dataset, parse_args, DatasetOptions};
use acobe_features::spec::cert_feature_set;
use acobe_nn::autoencoder::{Autoencoder, AutoencoderConfig, OutputActivationKind};
use acobe_nn::optim::Adam;
use acobe_nn::tensor::{set_kernel, Kernel, Matrix};
use acobe_nn::train::{fit_autoencoder, TrainConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct MatmulResult {
    m: usize,
    k: usize,
    n: usize,
    blocked_gflops: f64,
    reference_gflops: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct TrainResult {
    rows: usize,
    dim: usize,
    epochs: usize,
    blocked_epochs_per_s: f64,
    reference_epochs_per_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct EndToEndResult {
    users: usize,
    days: usize,
    blocked_s: f64,
    reference_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    threads: usize,
    quick: bool,
    matmul: Vec<MatmulResult>,
    train: TrainResult,
    e2e: EndToEndResult,
}

/// Runs `f` under the given kernel, restoring the blocked default after.
fn with_kernel<T>(kernel: Kernel, f: impl FnOnce() -> T) -> T {
    set_kernel(kernel);
    let out = f();
    set_kernel(Kernel::Blocked);
    out
}

/// Seconds taken by one call of `f`.
fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Median-of-three timing of `f`, in seconds.
fn time_median(mut f: impl FnMut()) -> f64 {
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        *s = time_once(&mut f).0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

fn pattern(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = ((r as u32).wrapping_mul(31).wrapping_add((c as u32) * 7 + seed) % 17) as f32;
            m.set(r, c, v * 0.25 - 2.0);
        }
    }
    m
}

fn bench_matmul(m: usize, k: usize, n: usize) -> MatmulResult {
    let a = pattern(m, k, 1);
    let b = pattern(k, n, 2);
    let mut out = Matrix::zeros(m, n);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    // Enough repetitions for ~100 ms per sample.
    let (probe, _) = time_once(|| a.matmul_into(&b, &mut out));
    let reps = ((0.1 / probe.max(1e-6)).ceil() as usize).clamp(1, 1000);
    let gflops = |secs: f64| flops * reps as f64 / secs / 1e9;

    let blocked = time_median(|| {
        for _ in 0..reps {
            a.matmul_into(&b, &mut out);
        }
    });
    let reference = with_kernel(Kernel::Reference, || {
        time_median(|| {
            for _ in 0..reps {
                a.matmul_into(&b, &mut out);
            }
        })
    });
    MatmulResult {
        m,
        k,
        n,
        blocked_gflops: gflops(blocked),
        reference_gflops: gflops(reference),
        speedup: reference / blocked,
    }
}

fn bench_training(rows: usize, dim: usize, epochs: usize) -> TrainResult {
    let data = pattern(rows, dim, 3);
    let train = TrainConfig { epochs, batch_size: 64, seed: 7, early_stop_rel: None };
    let run = || {
        let config = AutoencoderConfig {
            input_dim: dim,
            encoder_dims: vec![dim, dim / 2, dim / 4],
            batch_norm: true,
            output_activation: OutputActivationKind::Relu,
            seed: 42,
        };
        let mut ae = Autoencoder::new(config);
        fit_autoencoder(&mut ae, &data, &train, &mut Adam::new(1e-3));
    };
    let (blocked_s, _) = time_once(run);
    let (reference_s, _) = with_kernel(Kernel::Reference, || time_once(run));
    TrainResult {
        rows,
        dim,
        epochs,
        blocked_epochs_per_s: epochs as f64 / blocked_s,
        reference_epochs_per_s: epochs as f64 / reference_s,
        speedup: reference_s / blocked_s,
    }
}

fn bench_e2e() -> EndToEndResult {
    let options = DatasetOptions {
        users_per_dept: 6,
        departments: 2,
        seed: 5,
        with_baseline: false,
    };
    let ds = build_cert_dataset(&options);
    let days = ds.end.days_since(ds.start) as usize;
    let split = ds.scenario_split(&ds.victims[0]);
    let run = |parallel_train: bool| {
        let mut config = AcobeConfig::tiny();
        config.parallel_train = parallel_train;
        let mut pipeline =
            AcobePipeline::new(ds.cert_cube.clone(), cert_feature_set(), &ds.groups, config)
                .expect("pipeline");
        pipeline.fit(split.train_start, split.train_end).expect("fit");
        pipeline.score_range(split.test_start, split.test_end).expect("score");
    };
    // The "before" leg: serial ensemble on the pre-existing naive kernel.
    let (blocked_s, _) = time_once(|| run(true));
    let (reference_s, _) = with_kernel(Kernel::Reference, || time_once(|| run(false)));
    EndToEndResult {
        users: ds.users,
        days,
        blocked_s,
        reference_s,
        speedup: reference_s / blocked_s,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let quick = arg_value(&parsed, "quick").is_some();
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    let out_path = arg_value(&parsed, "out").unwrap_or(default_out).to_string();

    let threads = acobe_nn::pool::global().threads();
    println!("nn_bench: {threads} thread(s), {} workloads", if quick { "quick" } else { "full" });

    let shapes: &[(usize, usize, usize)] = if quick {
        &[(128, 128, 128), (64, 256, 128)]
    } else {
        &[(256, 256, 256), (512, 512, 512), (64, 512, 256), (1024, 128, 512)]
    };
    let mut matmul = Vec::new();
    for &(m, k, n) in shapes {
        let r = bench_matmul(m, k, n);
        println!(
            "matmul {m}x{k}x{n}: blocked {:.2} GFLOP/s, reference {:.2} GFLOP/s ({:.2}x)",
            r.blocked_gflops, r.reference_gflops, r.speedup
        );
        matmul.push(r);
    }

    let (rows, dim, epochs) = if quick { (1024, 64, 3) } else { (4096, 128, 5) };
    let train = bench_training(rows, dim, epochs);
    println!(
        "train {rows}x{dim} ({epochs} epochs): blocked {:.2} epochs/s, reference {:.2} epochs/s ({:.2}x)",
        train.blocked_epochs_per_s, train.reference_epochs_per_s, train.speedup
    );

    let e2e = bench_e2e();
    println!(
        "e2e {} users x {} days: blocked {:.2} s, reference {:.2} s ({:.2}x)",
        e2e.users, e2e.days, e2e.blocked_s, e2e.reference_s, e2e.speedup
    );

    let report = BenchReport { threads, quick, matmul, train, e2e };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_nn.json");
    println!("wrote {out_path}");
}
