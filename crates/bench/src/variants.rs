//! The seven model configurations compared in Figure 6.

use crate::error::BenchError;
use acobe::config::AcobeConfig;
use acobe_features::spec::{baseline_feature_set, cert_feature_set, FeatureSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which cube a variant consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeKind {
    /// Fine-grained 16-feature, 2-frame cube.
    Cert,
    /// Coarse 11-feature, 24-frame cube.
    Baseline,
}

/// The model variants of the paper's comparison (Section V-B/V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelVariant {
    /// Full ACOBE (long-term, group, weighted, ensemble, N = 3).
    Acobe,
    /// ACOBE with an alternative critic N (Figure 6(c)).
    AcobeN(usize),
    /// Without group deviations (Section V-B2).
    NoGroup,
    /// Single-day reconstruction (Section V-B1).
    OneDay,
    /// One autoencoder over all features (Section V-B3).
    AllInOne,
    /// Liu et al. 2018 re-implementation: coarse features, 24 frames,
    /// single-day, no group, no weights.
    Baseline,
    /// Baseline with ACOBE's fine-grained features.
    BaseFf,
}

impl ModelVariant {
    /// All variants compared in Figure 6(a)/(b) plus the critic sweep of
    /// Figure 6(c).
    pub fn all() -> Vec<ModelVariant> {
        vec![
            ModelVariant::Acobe,
            ModelVariant::NoGroup,
            ModelVariant::OneDay,
            ModelVariant::AllInOne,
            ModelVariant::Baseline,
            ModelVariant::BaseFf,
            ModelVariant::AcobeN(1),
            ModelVariant::AcobeN(2),
        ]
    }

    /// Which cube the variant consumes.
    pub fn cube(&self) -> CubeKind {
        match self {
            ModelVariant::Baseline => CubeKind::Baseline,
            _ => CubeKind::Cert,
        }
    }

    /// The feature set / aspect partition.
    pub fn feature_set(&self) -> FeatureSet {
        match self {
            ModelVariant::Baseline => baseline_feature_set(),
            ModelVariant::AllInOne => cert_feature_set().all_in_one(),
            _ => cert_feature_set(),
        }
    }

    /// The pipeline configuration, derived from a speed preset.
    pub fn config(&self, speed: SpeedPreset) -> AcobeConfig {
        let base = speed.base_config();
        match self {
            ModelVariant::Acobe => base,
            ModelVariant::AcobeN(n) => base.with_critic_n(*n),
            ModelVariant::NoGroup => base.without_group(),
            ModelVariant::OneDay => base.single_day(),
            ModelVariant::AllInOne => base.with_critic_n(1),
            ModelVariant::Baseline | ModelVariant::BaseFf => {
                base.baseline_style().with_critic_n(3)
            }
        }
    }

    /// Stable name for CSV columns.
    pub fn name(&self) -> String {
        match self {
            ModelVariant::Acobe => "acobe".into(),
            ModelVariant::AcobeN(n) => format!("acobe-n{n}"),
            ModelVariant::NoGroup => "no-group".into(),
            ModelVariant::OneDay => "1-day".into(),
            ModelVariant::AllInOne => "all-in-1".into(),
            ModelVariant::Baseline => "baseline".into(),
            ModelVariant::BaseFf => "base-ff".into(),
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::UnknownVariant`] naming the input and the
    /// accepted variants.
    pub fn parse(s: &str) -> Result<ModelVariant, BenchError> {
        Ok(match s {
            "acobe" => ModelVariant::Acobe,
            "no-group" => ModelVariant::NoGroup,
            "1-day" | "one-day" => ModelVariant::OneDay,
            "all-in-1" | "all-in-one" => ModelVariant::AllInOne,
            "baseline" => ModelVariant::Baseline,
            "base-ff" => ModelVariant::BaseFf,
            other => {
                if let Some(n) = other.strip_prefix("acobe-n") {
                    let n: usize = n
                        .parse()
                        .map_err(|_| BenchError::UnknownVariant(other.to_string()))?;
                    ModelVariant::AcobeN(n)
                } else {
                    return Err(BenchError::UnknownVariant(other.to_string()));
                }
            }
        })
    }
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Experiment speed/fidelity presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeedPreset {
    /// The paper's full hyper-parameters (ω = D = 30, 512-…-64, Adadelta).
    Paper,
    /// Scaled-down but shape-preserving (ω = D = 14, 128-64-32, Adam).
    Fast,
    /// Tiny, for CI smoke tests.
    Tiny,
}

impl SpeedPreset {
    /// The base [`AcobeConfig`] of the preset.
    pub fn base_config(&self) -> AcobeConfig {
        match self {
            SpeedPreset::Paper => AcobeConfig::paper(),
            SpeedPreset::Fast => AcobeConfig::fast(),
            SpeedPreset::Tiny => AcobeConfig::tiny(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for v in ModelVariant::all() {
            let parsed = ModelVariant::parse(&v.name()).unwrap();
            assert_eq!(parsed, v);
        }
        assert_eq!(
            ModelVariant::parse("nope").unwrap_err(),
            BenchError::UnknownVariant("nope".into())
        );
        assert_eq!(
            ModelVariant::parse("acobe-nX").unwrap_err(),
            BenchError::UnknownVariant("acobe-nX".into())
        );
    }

    #[test]
    fn cube_routing() {
        assert_eq!(ModelVariant::Baseline.cube(), CubeKind::Baseline);
        assert_eq!(ModelVariant::BaseFf.cube(), CubeKind::Cert);
        assert_eq!(ModelVariant::Acobe.cube(), CubeKind::Cert);
    }

    #[test]
    fn configs_are_valid() {
        for v in ModelVariant::all() {
            for speed in [SpeedPreset::Paper, SpeedPreset::Fast, SpeedPreset::Tiny] {
                let cfg = v.config(speed);
                cfg.validate().unwrap_or_else(|e| panic!("{v:?}/{speed:?}: {e}"));
                // critic_n must be satisfiable by the aspect count.
                assert!(cfg.critic_n <= v.feature_set().aspects.len(), "{v:?}");
            }
        }
    }

    #[test]
    fn all_in_one_has_single_aspect() {
        let fs = ModelVariant::AllInOne.feature_set();
        assert_eq!(fs.aspects.len(), 1);
        assert_eq!(ModelVariant::AllInOne.config(SpeedPreset::Tiny).critic_n, 1);
    }
}
