//! Typed errors for the experiment harness.
//!
//! The CLI-facing parsers (`DatasetOptions::from_scale`,
//! `ModelVariant::parse`) used to hand back the offending string as a bare
//! `String`; the binaries then had to invent the error message themselves.
//! [`BenchError`] keeps the offending input *and* renders the accepted
//! vocabulary, so every binary prints the same self-explanatory line.

use std::fmt;

/// Everything the experiment harness can reject about its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchError {
    /// `--scale` was not one of the known dataset scales.
    UnknownScale(String),
    /// `--variant` was not one of the Figure-6 model variants.
    UnknownVariant(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownScale(s) => {
                write!(f, "unknown scale '{s}' (expected small|medium|dept114|paper)")
            }
            BenchError::UnknownVariant(s) => write!(
                f,
                "unknown variant '{s}' \
                 (expected acobe|no-group|1-day|all-in-1|baseline|base-ff|acobe-nN)"
            ),
        }
    }
}

impl std::error::Error for BenchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_input_and_the_vocabulary() {
        let e = BenchError::UnknownScale("huge".into());
        let msg = e.to_string();
        assert!(msg.contains("'huge'"), "{msg}");
        assert!(msg.contains("dept114"), "{msg}");

        let e = BenchError::UnknownVariant("acobe-nX".into());
        let msg = e.to_string();
        assert!(msg.contains("'acobe-nX'"), "{msg}");
        assert!(msg.contains("base-ff"), "{msg}");
    }
}
