//! Per-scenario experiment execution.

use crate::dataset::CertDataset;
use crate::variants::{CubeKind, ModelVariant, SpeedPreset};
use acobe::pipeline::{AcobePipeline, ScoreTable};
use acobe_eval::ranking::{RankedUser, ScenarioRanking};
use acobe_synth::scenario::VictimRecord;
use std::collections::HashSet;

/// The result of evaluating one variant on one scenario.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The scenario's victim.
    pub victim: VictimRecord,
    /// Per-aspect per-day per-user scores over the test window.
    pub table: ScoreTable,
    /// Ranking outcome (FPs before the TP, worst-case ties).
    pub ranking: ScenarioRanking,
    /// The victim's position in the ordered investigation list (0-based).
    pub victim_position: usize,
}

/// Trains and scores `variant` for the scenario of `victim`.
///
/// # Panics
///
/// Panics when the variant needs the Baseline cube but the dataset was built
/// without it, or on internal pipeline errors (they indicate harness bugs).
pub fn run_scenario(
    ds: &CertDataset,
    victim: &VictimRecord,
    variant: ModelVariant,
    speed: SpeedPreset,
) -> ScenarioRun {
    let _span = acobe_obs::span!("scenario", name = victim.scenario);
    acobe_obs::counter("bench/scenarios_run").inc();
    let cube = match variant.cube() {
        CubeKind::Cert => ds.cert_cube.clone(),
        CubeKind::Baseline => ds
            .baseline_cube
            .as_ref()
            .expect("dataset built without the baseline cube")
            .clone(),
    };
    let config = variant.config(speed);
    let critic_n = config.critic_n;
    let mut pipeline = AcobePipeline::new(cube, variant.feature_set(), &ds.groups, config)
        .expect("pipeline construction");
    let split = ds.scenario_split(victim);
    pipeline
        .fit(split.train_start, split.train_end)
        .expect("training");
    let table = pipeline
        .score_range(split.test_start, split.test_end)
        .expect("scoring");

    // Rank by the max trailing 3-day mean: persistent anomalies (the
    // paper's victims stay elevated for days, Figure 5(b)) beat one-day
    // noise spikes.
    let list = table.investigation_list_smoothed(critic_n, 3);
    let ranked: Vec<RankedUser> = list
        .iter()
        .map(|inv| RankedUser { user: inv.user, priority: inv.priority })
        .collect();
    let positives: HashSet<usize> = [victim.user.index()].into();
    let ranking = ScenarioRanking::new(&ranked, &positives);
    let victim_position = list
        .iter()
        .position(|inv| inv.user == victim.user.index())
        .expect("victim present in list");

    ScenarioRun { victim: victim.clone(), table, ranking, victim_position }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_cert_dataset, DatasetOptions};

    #[test]
    fn acobe_ranks_victims_early_on_tiny_dataset() {
        let ds = build_cert_dataset(&DatasetOptions {
            users_per_dept: 12,
            departments: 2,
            seed: 5,
            with_baseline: false,
        });
        // Scenario 1 (abrupt device + off-hours + uploads) is the easy one.
        let victim = ds
            .victims
            .iter()
            .find(|v| v.scenario == "scenario1")
            .unwrap();
        let run = run_scenario(&ds, victim, ModelVariant::Acobe, SpeedPreset::Tiny);
        // 24 users; the victim should be near the very top.
        assert!(
            run.victim_position <= 2,
            "victim at position {} of {}",
            run.victim_position,
            ds.users
        );
        assert_eq!(run.ranking.positives(), 1);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::dataset::{build_cert_dataset, DatasetOptions};

    /// Diagnostic (run with `--ignored --nocapture`): prints per-aspect ranks
    /// of the scenario-1 victim on a tiny dataset.
    #[test]
    #[ignore]
    fn diagnose_scenario1() {
        let ds = build_cert_dataset(&DatasetOptions {
            users_per_dept: 12,
            departments: 2,
            seed: 5,
            with_baseline: false,
        });
        let victim = ds.victims.iter().find(|v| v.scenario == "scenario1").unwrap();
        let run = run_scenario(&ds, victim, ModelVariant::Acobe, SpeedPreset::Tiny);
        let vidx = victim.user.index();
        for (a, name) in run.table.aspect_names.iter().enumerate() {
            let maxes = run.table.smoothed_max_per_user(a, 3);
            let mut order: Vec<usize> = (0..maxes.len()).collect();
            order.sort_by(|&x, &y| maxes[y].partial_cmp(&maxes[x]).unwrap());
            let pos = order.iter().position(|&u| u == vidx).unwrap();
            eprintln!("aspect {name}: victim rank {} (score {:.5}, top score {:.5})", pos + 1, maxes[vidx], maxes[order[0]]);
        }
        let list = run.table.investigation_list_smoothed(2, 3);
        eprintln!("top of list: {:?}", &list[..6.min(list.len())]);
        eprintln!("victim {:?} anomaly {}..{}", victim.user, victim.anomaly_start, victim.anomaly_end);
    }
}
