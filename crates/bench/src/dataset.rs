//! Streaming dataset construction for the evaluation experiments.

use crate::error::BenchError;
use acobe_features::baseline::BaselineExtractor;
use acobe_features::cert::{CertExtractor, CountSemantics};
use acobe_features::counts::FeatureCube;
use acobe_logs::time::Date;
use acobe_synth::cert::{CertConfig, CertGenerator};
use acobe_synth::org::OrgConfig;
use acobe_synth::scenario::VictimRecord;

/// Options controlling dataset scale and which cubes are materialized.
#[derive(Debug, Clone)]
pub struct DatasetOptions {
    /// Users per department (the paper's scale is 232; 58 is a fast default).
    pub users_per_dept: usize,
    /// Number of departments (the paper has 4, one insider each).
    pub departments: usize,
    /// Master seed.
    pub seed: u64,
    /// Also extract the coarse Baseline cube (24 hourly frames) — only
    /// needed by the Baseline variant; it is the largest allocation.
    pub with_baseline: bool,
}

impl Default for DatasetOptions {
    fn default() -> Self {
        DatasetOptions { users_per_dept: 58, departments: 4, seed: 1, with_baseline: true }
    }
}

impl DatasetOptions {
    /// Resolves a `--scale` CLI string.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::UnknownScale`] naming the input and the
    /// accepted scales.
    pub fn from_scale(scale: &str) -> Result<Self, BenchError> {
        let users_per_dept = match scale {
            "small" => 29,
            "medium" => 58,
            "dept114" => 114,
            "paper" => 232,
            other => return Err(BenchError::UnknownScale(other.to_string())),
        };
        Ok(DatasetOptions { users_per_dept, ..Default::default() })
    }
}

/// A fully extracted evaluation dataset.
#[derive(Debug)]
pub struct CertDataset {
    /// Fine-grained 16-feature cube (2 frames).
    pub cert_cube: FeatureCube,
    /// Coarse 11-feature cube (24 frames), when requested.
    pub baseline_cube: Option<FeatureCube>,
    /// Group rosters (department members, by user index).
    pub groups: Vec<Vec<usize>>,
    /// Ground-truth victims.
    pub victims: Vec<VictimRecord>,
    /// First day.
    pub start: Date,
    /// First day after the span.
    pub end: Date,
    /// Total users.
    pub users: usize,
}

impl CertDataset {
    /// Number of normal users.
    pub fn normal_users(&self) -> usize {
        self.users - self.victims.len()
    }

    /// The train/test split for one victim's scenario, following the paper:
    /// training from the first collection day until roughly one month (37
    /// days) before the labeled anomalies; testing from one month before
    /// until one month after (clipped to the dataset span).
    pub fn scenario_split(&self, victim: &VictimRecord) -> ScenarioSplit {
        let train_end = victim.anomaly_start.add_days(-37);
        let test_start = victim.anomaly_start.add_days(-30);
        let test_end_raw = victim.anomaly_end.add_days(30);
        let test_end = if test_end_raw < self.end { test_end_raw } else { self.end };
        ScenarioSplit { train_start: self.start, train_end, test_start, test_end }
    }
}

/// Date ranges for one scenario evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSplit {
    /// First training day.
    pub train_start: Date,
    /// First non-training day.
    pub train_end: Date,
    /// First scored day.
    pub test_start: Date,
    /// First unscored day.
    pub test_end: Date,
}

/// Generates the CERT-like dataset and extracts the feature cubes in one
/// streaming pass (events are never stored).
pub fn build_cert_dataset(options: &DatasetOptions) -> CertDataset {
    let org = OrgConfig {
        departments: options.departments,
        users_per_dept: options.users_per_dept,
        seed: options.seed ^ 0x0a6,
    };
    let config = CertConfig::paper(org, options.seed);
    let mut gen = CertGenerator::new(config.clone());
    let users = config.org.total_users();

    let mut cert_ex = CertExtractor::new(users, config.start, config.end, CountSemantics::Plain);
    let mut baseline_ex = options
        .with_baseline
        .then(|| BaselineExtractor::new(users, config.start, config.end));

    for date in config.start.range_to(config.end) {
        let events = gen.generate_day(date);
        cert_ex.ingest_day(date, &events);
        if let Some(b) = baseline_ex.as_mut() {
            b.ingest_day(date, &events);
        }
    }

    let groups: Vec<Vec<usize>> = gen
        .directory()
        .departments()
        .map(|d| gen.directory().members(d).iter().map(|u| u.index()).collect())
        .collect();

    CertDataset {
        cert_cube: cert_ex.finish(),
        baseline_cube: baseline_ex.map(BaselineExtractor::finish),
        groups,
        victims: gen.ground_truth(),
        start: config.start,
        end: config.end,
        users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_builds() {
        let opts = DatasetOptions {
            users_per_dept: 6,
            departments: 2,
            seed: 3,
            with_baseline: true,
        };
        let ds = build_cert_dataset(&opts);
        assert_eq!(ds.users, 12);
        assert_eq!(ds.groups.len(), 2);
        assert_eq!(ds.victims.len(), 2);
        assert!(ds.cert_cube.total() > 0.0);
        assert!(ds.baseline_cube.as_ref().unwrap().total() > 0.0);
        assert_eq!(ds.normal_users(), 10);
    }

    #[test]
    fn scenario_split_windows() {
        let opts = DatasetOptions {
            users_per_dept: 6,
            departments: 2,
            seed: 3,
            with_baseline: false,
        };
        let ds = build_cert_dataset(&opts);
        let split = ds.scenario_split(&ds.victims[0]);
        assert_eq!(split.train_start, ds.start);
        assert_eq!(
            split.train_end,
            ds.victims[0].anomaly_start.add_days(-37)
        );
        assert!(split.test_start < ds.victims[0].anomaly_start);
        assert!(split.test_end <= ds.end);
        assert!(ds.baseline_cube.is_none());
    }

    #[test]
    fn scale_strings() {
        assert_eq!(DatasetOptions::from_scale("paper").unwrap().users_per_dept, 232);
        assert_eq!(DatasetOptions::from_scale("small").unwrap().users_per_dept, 29);
        assert_eq!(
            DatasetOptions::from_scale("bogus").unwrap_err(),
            BenchError::UnknownScale("bogus".into())
        );
    }
}

/// A fully extracted enterprise case-study dataset (paper Section VI).
#[derive(Debug)]
pub struct EnterpriseDataset {
    /// 20-feature enterprise cube (2 frames).
    pub cube: FeatureCube,
    /// Single org-wide group (the case study has no department split).
    pub groups: Vec<Vec<usize>>,
    /// The attacked employee.
    pub victim: usize,
    /// First day.
    pub start: Date,
    /// First day after the span.
    pub end: Date,
    /// Attack detonation day (paper: Feb 2).
    pub attack_day: Date,
    /// Org-wide environmental change day (paper: Jan 26).
    pub env_change: Date,
    /// The attack scenario.
    pub attack: acobe_synth::enterprise::Attack,
}

/// Generates the enterprise environment and extracts its feature cube in one
/// streaming pass.
pub fn build_enterprise_dataset(
    attack: acobe_synth::enterprise::Attack,
    users: usize,
    seed: u64,
) -> EnterpriseDataset {
    use acobe_features::enterprise::EnterpriseExtractor;
    use acobe_synth::enterprise::{EnterpriseConfig, EnterpriseGenerator};

    let mut config = EnterpriseConfig::paper(attack, seed);
    config.users = users;
    if config.victim.index() >= users {
        config.victim = acobe_logs::ids::UserId(users as u32 / 2);
    }
    let mut gen = EnterpriseGenerator::new(config.clone());
    let mut ex = EnterpriseExtractor::new(users, config.start, config.end);
    for date in config.start.range_to(config.end) {
        let events = gen.generate_day(date);
        ex.ingest_day(date, &events);
    }
    EnterpriseDataset {
        cube: ex.finish(),
        groups: vec![(0..users).collect()],
        victim: config.victim.index(),
        start: config.start,
        end: config.end,
        attack_day: config.attack_day,
        env_change: config.env_change,
        attack,
    }
}

#[cfg(test)]
mod enterprise_tests {
    use super::*;
    use acobe_synth::enterprise::Attack;

    #[test]
    fn enterprise_dataset_builds() {
        let ds = build_enterprise_dataset(Attack::Ransomware, 12, 9);
        assert_eq!(ds.cube.users(), 12);
        assert!(ds.cube.total() > 0.0);
        assert_eq!(ds.groups.len(), 1);
        assert!(ds.victim < 12);
        assert!(ds.attack_day > ds.env_change);
    }
}
