//! Experiment harness shared by the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one figure/table of the paper
//! (see DESIGN.md §4 for the index); this library holds the common plumbing:
//! dataset construction, model-variant definitions, per-scenario train/test
//! splits, and the scenario runner.

#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod fig6;
pub mod runner;
pub mod variants;

pub use dataset::{build_cert_dataset, CertDataset, DatasetOptions};
pub use error::BenchError;
pub use runner::{run_scenario, ScenarioRun};
pub use variants::{ModelVariant, SpeedPreset};

/// Default output directory for regenerated figures and tables.
pub const EXPERIMENTS_DIR: &str = "experiments";

/// Parses `--key value` style arguments into (key, value) pairs; bare flags
/// get an empty value.
pub fn parse_args(args: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                String::new()
            };
            out.push((key.to_string(), value));
        }
        i += 1;
    }
    out
}

/// Looks up an argument value.
pub fn arg_value<'a>(parsed: &'a [(String, String)], key: &str) -> Option<&'a str> {
    parsed
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "small", "--paper", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_args(&args);
        assert_eq!(arg_value(&parsed, "scale"), Some("small"));
        assert_eq!(arg_value(&parsed, "paper"), Some(""));
        assert_eq!(arg_value(&parsed, "seed"), Some("7"));
        assert_eq!(arg_value(&parsed, "missing"), None);
    }
}
