//! Shared implementation of the Figure 6 / Table 1 experiment: every model
//! variant, every scenario, merged ROC and precision-recall analysis.

use crate::dataset::{build_cert_dataset, CertDataset, DatasetOptions};
use crate::runner::run_scenario;
use crate::variants::{ModelVariant, SpeedPreset};
use acobe_eval::pr::PrCurve;
use acobe_eval::ranking::{merge_scenarios, ScenarioRanking};
use acobe_eval::roc::RocCurve;
use acobe_obs::MetricRecord;
use serde::{Deserialize, Serialize};

/// One variant's merged outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantSummary {
    /// Variant name.
    pub variant: String,
    /// FPs listed before each TP (sorted ascending, one per scenario).
    pub fp_before_tp: Vec<usize>,
    /// Distinct normal users.
    pub negatives: usize,
    /// Area under the ROC curve.
    pub auc: f64,
    /// Average precision (area under the PR curve).
    pub average_precision: f64,
    /// Best F1 along the PR curve.
    pub best_f1: f64,
    /// ROC points `(fpr, tpr)`.
    pub roc_points: Vec<(f64, f64)>,
    /// PR points `(recall, precision)`.
    pub pr_points: Vec<(f64, f64)>,
    /// Victim 0-based list positions per scenario.
    pub victim_positions: Vec<usize>,
    /// Wall-time span records for this variant's run (extraction through
    /// critic, aggregated over its scenarios). Absent in results saved
    /// before instrumentation landed.
    #[serde(default)]
    pub stage_timings: Vec<MetricRecord>,
}

/// Runs one variant over every scenario of the dataset.
///
/// Resets the global observability registry on entry so the embedded
/// `stage_timings` cover exactly this variant's work.
pub fn evaluate_variant(
    ds: &CertDataset,
    variant: ModelVariant,
    speed: SpeedPreset,
) -> VariantSummary {
    acobe_obs::reset();
    let mut rankings: Vec<ScenarioRanking> = Vec::new();
    let mut victim_positions = Vec::new();
    for victim in &ds.victims {
        acobe_obs::progress!(
            "  [{}] scenario {} (victim {}, anomalies {}..{})",
            variant.name(),
            victim.scenario,
            victim.user,
            victim.anomaly_start,
            victim.anomaly_end
        );
        let run = run_scenario(ds, victim, variant, speed);
        victim_positions.push(run.victim_position);
        rankings.push(run.ranking);
    }
    let merged = merge_scenarios(&rankings, ds.normal_users());
    let roc = RocCurve::from_ranking(&merged);
    let pr = PrCurve::from_ranking(&merged);
    VariantSummary {
        variant: variant.name(),
        fp_before_tp: merged.fp_before_tp.clone(),
        negatives: merged.negatives,
        auc: roc.auc(),
        average_precision: pr.average_precision(),
        best_f1: pr.best_f1(),
        roc_points: roc.points,
        pr_points: pr.points,
        victim_positions,
        stage_timings: acobe_obs::global().span_records(),
    }
}

/// Runs the full comparison (the given variants over one dataset).
pub fn run_comparison(
    options: &DatasetOptions,
    variants: &[ModelVariant],
    speed: SpeedPreset,
) -> Vec<VariantSummary> {
    let needs_baseline = variants.iter().any(|v| *v == ModelVariant::Baseline);
    let mut opts = options.clone();
    opts.with_baseline = needs_baseline;
    acobe_obs::progress!(
        "generating dataset: {} departments x {} users",
        opts.departments, opts.users_per_dept
    );
    let ds = build_cert_dataset(&opts);
    variants
        .iter()
        .map(|&v| evaluate_variant(&ds, v, speed))
        .collect()
}

/// Formats the headline table ("Table 1") rows for a set of summaries.
pub fn table_rows(summaries: &[VariantSummary]) -> Vec<Vec<String>> {
    summaries
        .iter()
        .map(|s| {
            vec![
                s.variant.clone(),
                format!("{:.4}", s.auc * 100.0),
                format!("{:.4}", s.average_precision),
                format!("{:.4}", s.best_f1),
                format!("{:?}", s.fp_before_tp),
                format!("{:?}", s.victim_positions),
            ]
        })
        .collect()
}

/// Header for [`table_rows`].
pub const TABLE_HEADER: [&str; 6] = [
    "model",
    "auc(%)",
    "avg-precision",
    "best-f1",
    "fp-before-tp",
    "victim-positions",
];
