//! Criterion benchmarks for the data path: log synthesis throughput, CSV
//! codec, and feature extraction.

use acobe_features::baseline::BaselineExtractor;
use acobe_features::cert::{CertExtractor, CountSemantics};
use acobe_logs::csv::{FromCsv, ToCsv};
use acobe_logs::event::LogEvent;
use acobe_synth::cert::{CertConfig, CertGenerator};
use acobe_synth::org::OrgConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn one_day_of_events() -> (CertConfig, Vec<LogEvent>) {
    let org = OrgConfig { departments: 4, users_per_dept: 58, seed: 1 };
    let config = CertConfig::paper(org, 1);
    let mut gen = CertGenerator::new(config.clone());
    // Skip to a representative mid-span workday.
    let target = config.start.add_days(60);
    let mut events = Vec::new();
    for date in config.start.range_to(target.add_days(1)) {
        events = gen.generate_day(date);
    }
    (config, events)
}

fn bench_generator(c: &mut Criterion) {
    let org = OrgConfig { departments: 4, users_per_dept: 58, seed: 1 };
    let config = CertConfig::paper(org, 1);
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);
    group.bench_function("generate_30_days_232_users", |b| {
        b.iter(|| {
            let mut gen = CertGenerator::new(config.clone());
            let mut total = 0usize;
            for date in config.start.range_to(config.start.add_days(30)) {
                total += gen.generate_day(date).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_cert_extraction(c: &mut Criterion) {
    let (config, events) = one_day_of_events();
    let users = config.org.total_users();
    let mut group = c.benchmark_group("extract");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("cert_features_one_day", |b| {
        b.iter(|| {
            let mut ex = CertExtractor::new(
                users,
                config.start.add_days(60),
                config.start.add_days(61),
                CountSemantics::Plain,
            );
            ex.ingest_day(config.start.add_days(60), black_box(&events));
            black_box(ex.finish())
        })
    });
    group.bench_function("baseline_features_one_day", |b| {
        b.iter(|| {
            let mut ex = BaselineExtractor::new(
                users,
                config.start.add_days(60),
                config.start.add_days(61),
            );
            ex.ingest_day(config.start.add_days(60), black_box(&events));
            black_box(ex.finish())
        })
    });
    group.finish();
}

fn bench_csv_codec(c: &mut Criterion) {
    let (_, events) = one_day_of_events();
    let lines: Vec<String> = events.iter().map(|e| e.to_csv()).collect();
    let mut group = c.benchmark_group("csv");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("encode_one_day", |b| {
        b.iter(|| {
            for e in &events {
                black_box(e.to_csv());
            }
        })
    });
    group.bench_function("decode_one_day", |b| {
        b.iter(|| {
            for line in &lines {
                black_box(LogEvent::from_csv(line).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generator, bench_cert_extraction, bench_csv_codec);
criterion_main!(benches);
