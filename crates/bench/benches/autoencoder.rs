//! Criterion benchmarks for the neural substrate: forward pass, full
//! training step, and per-sample scoring of the paper's autoencoder.

use acobe_nn::autoencoder::{Autoencoder, AutoencoderConfig};
use acobe_nn::layer::Mode;
use acobe_nn::loss::mse;
use acobe_nn::optim::{Adadelta, Optimizer};
use acobe_nn::tensor::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn batch(rows: usize, dim: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        dim,
        (0..rows * dim)
            .map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0)
            .collect(),
    )
}

/// The paper's full architecture on an HTTP-aspect-sized input
/// (7 features × 2 frames × 30 days × 2 blocks = 840).
fn bench_paper_arch_forward(c: &mut Criterion) {
    let mut ae = Autoencoder::new(AutoencoderConfig::paper(840));
    let x = batch(64, 840);
    c.bench_function("autoencoder/paper840/forward_batch64", |b| {
        b.iter(|| ae.reconstruct(black_box(&x)))
    });
}

fn bench_paper_arch_train_step(c: &mut Criterion) {
    let mut ae = Autoencoder::new(AutoencoderConfig::paper(840));
    let mut opt = Adadelta::new();
    let x = batch(64, 840);
    c.bench_function("autoencoder/paper840/train_step_batch64", |b| {
        b.iter(|| {
            let net = ae.net_mut();
            net.zero_grad();
            let y = net.forward(black_box(&x), Mode::Train);
            let (_, grad) = mse(&y, &x);
            net.backward(&grad);
            opt.step(net);
        })
    });
}

fn bench_fast_arch_train_step(c: &mut Criterion) {
    let mut ae = Autoencoder::new(AutoencoderConfig {
        input_dim: 392,
        encoder_dims: vec![128, 64, 32],
        batch_norm: true,
        output_activation: Default::default(),
        seed: 1,
    });
    let mut opt = Adadelta::new();
    let x = batch(64, 392);
    c.bench_function("autoencoder/fast392/train_step_batch64", |b| {
        b.iter(|| {
            let net = ae.net_mut();
            net.zero_grad();
            let y = net.forward(black_box(&x), Mode::Train);
            let (_, grad) = mse(&y, &x);
            net.backward(&grad);
            opt.step(net);
        })
    });
}

fn bench_scoring(c: &mut Criterion) {
    let mut ae = Autoencoder::new(AutoencoderConfig::paper(840));
    let x = batch(929, 840); // one day of the paper-scale organization
    c.bench_function("autoencoder/paper840/score_929_users", |b| {
        b.iter(|| ae.reconstruction_errors(black_box(&x)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_paper_arch_forward, bench_paper_arch_train_step,
              bench_fast_arch_train_step, bench_scoring
}
criterion_main!(benches);
