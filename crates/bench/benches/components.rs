//! Criterion micro-benchmarks for the ACOBE pipeline components:
//! deviation-window computation, compound-matrix construction, and the
//! investigation-list critic.

use acobe::critic::investigate_from_scores;
use acobe::deviation::{compute_deviations, group_average_cube, DeviationConfig};
use acobe::matrix::{build_row, MatrixConfig};
use acobe_features::counts::FeatureCube;
use acobe_logs::time::Date;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn synthetic_cube(users: usize, days: usize, features: usize) -> FeatureCube {
    let mut cube = FeatureCube::new(users, Date::from_ymd(2010, 1, 1), days, 2, features);
    for u in 0..users {
        for d in 0..days {
            for t in 0..2 {
                for f in 0..features {
                    let v = ((u * 31 + d * 7 + t * 3 + f) % 17) as f32;
                    cube.set_by_index(u, d, t, f, v);
                }
            }
        }
    }
    cube
}

fn bench_deviation(c: &mut Criterion) {
    let cube = synthetic_cube(100, 365, 16);
    let config = DeviationConfig::default();
    c.bench_function("deviation/100users_365days_16feat", |b| {
        b.iter(|| compute_deviations(black_box(&cube), black_box(&config)))
    });
}

fn bench_group_average(c: &mut Criterion) {
    let cube = synthetic_cube(200, 180, 16);
    let groups: Vec<Vec<usize>> = (0..4).map(|g| (g * 50..(g + 1) * 50).collect()).collect();
    c.bench_function("group_average/200users_180days", |b| {
        b.iter(|| group_average_cube(black_box(&cube), black_box(&groups)))
    });
}

fn bench_matrix_build(c: &mut Criterion) {
    let cube = synthetic_cube(50, 120, 16);
    let dev = compute_deviations(&cube, &DeviationConfig::default());
    let config = MatrixConfig {
        matrix_days: 30,
        include_group: true,
        use_weights: true,
        delta: 3.0,
    };
    let features: Vec<usize> = (9..16).collect(); // the HTTP aspect
    c.bench_function("matrix_row/http_aspect_30days", |b| {
        b.iter(|| {
            build_row(
                black_box(&dev),
                Some(black_box(&dev)),
                7,
                3,
                100,
                black_box(&features),
                &config,
            )
        })
    });
}

fn bench_critic(c: &mut Criterion) {
    let users = 10_000;
    let aspect_scores: Vec<Vec<f32>> = (0..3)
        .map(|a| {
            (0..users)
                .map(|u| ((u * 2654435761usize + a * 97) % 100_000) as f32)
                .collect()
        })
        .collect();
    c.bench_function("critic/10k_users_3_aspects", |b| {
        b.iter_batched(
            || aspect_scores.clone(),
            |scores| investigate_from_scores(black_box(&scores), 2),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_deviation,
    bench_group_average,
    bench_matrix_build,
    bench_critic
);
criterion_main!(benches);
