//! Typed identifiers for log subjects and objects.
//!
//! Newtypes keep user/host/file/domain identifiers from being mixed up
//! (C-NEWTYPE). The synthesizer assigns display names (e.g. `JPH1910`)
//! through [`NameTable`]; the numeric ids are what flow through the pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{:04}"), self.0)
            }
        }
    };
}

id_type!(
    /// A user account (employee) identifier.
    UserId,
    "U"
);
id_type!(
    /// A workstation / server identifier.
    HostId,
    "PC"
);
id_type!(
    /// A file object identifier.
    FileId,
    "F"
);
id_type!(
    /// A web domain identifier.
    DomainId,
    "D"
);
id_type!(
    /// An organizational department (third-tier organizational unit).
    DeptId,
    "DEPT"
);

/// Maps numeric ids to human-readable names, CERT-style.
///
/// # Examples
///
/// ```
/// use acobe_logs::ids::{NameTable, UserId};
/// let mut names = NameTable::new();
/// names.insert(UserId(7).index(), "JPH1910".to_string());
/// assert_eq!(names.name(7), Some("JPH1910"));
/// assert_eq!(names.name(8), None);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NameTable {
    names: Vec<Option<String>>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` for index `idx`, growing the table as needed.
    pub fn insert(&mut self, idx: usize, name: String) {
        if idx >= self.names.len() {
            self.names.resize(idx + 1, None);
        }
        self.names[idx] = Some(name);
    }

    /// Looks up the name for `idx`.
    pub fn name(&self, idx: usize) -> Option<&str> {
        self.names.get(idx).and_then(|n| n.as_deref())
    }

    /// Number of slots (registered or not).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names are registered.
    pub fn is_empty(&self) -> bool {
        self.names.iter().all(|n| n.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(UserId(3).to_string(), "U0003");
        assert_eq!(HostId(12).to_string(), "PC0012");
        assert_eq!(FileId(9999).to_string(), "F9999");
        assert_eq!(DomainId(1).to_string(), "D0001");
        assert_eq!(DeptId(2).to_string(), "DEPT0002");
    }

    #[test]
    fn ordering_and_index() {
        assert!(UserId(1) < UserId(2));
        assert_eq!(UserId(5).index(), 5);
        assert_eq!(UserId::from(7u32), UserId(7));
    }

    #[test]
    fn name_table() {
        let mut t = NameTable::new();
        assert!(t.is_empty());
        t.insert(2, "ACM2278".into());
        assert_eq!(t.name(2), Some("ACM2278"));
        assert_eq!(t.name(0), None);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}

/// Interns external string identifiers (user names, PC names, URLs, file
/// paths) into dense `u32` ids, preserving the original strings for export.
///
/// # Examples
///
/// ```
/// use acobe_logs::ids::Interner;
/// let mut users = Interner::new();
/// let a = users.intern("DTAA/JPH1910");
/// let b = users.intern("DTAA/JPH1910");
/// assert_eq!(a, b);
/// assert_eq!(users.resolve(a), Some("DTAA/JPH1910"));
/// assert_eq!(users.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    map: std::collections::HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating one if unseen.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.map.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// Looks up an already-interned name without allocating.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    /// The original string for `id`.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod interner_tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(1), Some("beta"));
        assert_eq!(i.resolve(9), None);
        assert_eq!(i.get("beta"), Some(1));
        assert_eq!(i.get("gamma"), None);
    }
}
