//! Audit-log substrate for the ACOBE reproduction.
//!
//! This crate models the raw material the paper works with: organizational
//! audit logs. It provides
//!
//! * [`time`] — civil dates, timestamps, and the paper's working/off-hours
//!   time frames,
//! * [`calendar`] — weekends, holidays and "return days" (busy Mondays),
//! * [`ids`] — typed identifiers for users, hosts, files, domains and
//!   departments,
//! * [`event`] — typed records for every log category used by the paper
//!   (device / file / HTTP / email / logon, plus the enterprise case-study
//!   Windows-event and proxy logs),
//! * [`csv`] — CERT-style CSV encode/decode for all events,
//! * [`directory`] — the LDAP directory defining peer groups,
//! * [`store`] — a sorted, day-sliceable event store.
//!
//! # Examples
//!
//! ```
//! use acobe_logs::event::{HttpActivity, HttpEvent, FileType, LogEvent};
//! use acobe_logs::ids::{DomainId, UserId};
//! use acobe_logs::store::LogStore;
//! use acobe_logs::time::Date;
//!
//! let store: LogStore = (0..5)
//!     .map(|i| {
//!         LogEvent::Http(HttpEvent {
//!             ts: Date::from_ymd(2010, 3, 1 + i).at(10, 0, 0),
//!             user: UserId(0),
//!             domain: DomainId(i),
//!             activity: HttpActivity::Visit,
//!             filetype: FileType::Other,
//!             success: true,
//!         })
//!     })
//!     .collect();
//! assert_eq!(store.day(Date::from_ymd(2010, 3, 2)).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod cert_io;
pub mod csv;
pub mod directory;
pub mod event;
pub mod ids;
pub mod store;
pub mod time;

pub use calendar::Calendar;
pub use directory::Directory;
pub use event::{LogCategory, LogEvent};
pub use ids::{DeptId, DomainId, FileId, HostId, UserId};
pub use store::LogStore;
pub use time::{Date, TimeFrame, Timestamp};
