//! Typed audit-log event records.
//!
//! These mirror the CERT Insider Threat Test Dataset log categories used by
//! the paper's evaluation (device, file, HTTP, email, logon — Section V-A3)
//! plus the enterprise case-study categories (Windows events, web proxy —
//! Section VI-A).

use crate::ids::{DomainId, FileId, HostId, UserId};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Thumb-drive activity (`device.csv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceActivity {
    /// A removable drive was connected.
    Connect,
    /// A removable drive was disconnected.
    Disconnect,
}

/// One removable-device log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceEvent {
    /// When the activity happened.
    pub ts: Timestamp,
    /// Acting user.
    pub user: UserId,
    /// Host the drive was (dis)connected to.
    pub host: HostId,
    /// Connect or disconnect.
    pub activity: DeviceActivity,
}

/// Whether a file endpoint is the local machine or a remote share/drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// Local disk.
    Local,
    /// Remote share or removable media.
    Remote,
}

/// File operation verb (`file.csv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileActivity {
    /// Open / read.
    Open,
    /// Write / modify.
    Write,
    /// Copy between locations.
    Copy,
    /// Delete.
    Delete,
}

/// One file-access log entry with a dataflow direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEvent {
    /// When the operation happened.
    pub ts: Timestamp,
    /// Acting user.
    pub user: UserId,
    /// Host where the operation ran.
    pub host: HostId,
    /// File object.
    pub file: FileId,
    /// Operation verb.
    pub activity: FileActivity,
    /// Where the data came from.
    pub from: Location,
    /// Where the data went.
    pub to: Location,
}

/// HTTP verb used by the paper's features (`http.csv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HttpActivity {
    /// Page visit.
    Visit,
    /// File download.
    Download,
    /// File upload.
    Upload,
}

/// File type attached to an HTTP download/upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// Word-processor document.
    Doc,
    /// Executable.
    Exe,
    /// Image.
    Jpg,
    /// PDF document.
    Pdf,
    /// Plain text.
    Txt,
    /// Archive.
    Zip,
    /// Anything else (HTML page, none).
    Other,
}

impl FileType {
    /// All concrete (feature-bearing) file types, in feature order f1..f6.
    pub fn upload_feature_order() -> [FileType; 6] {
        [
            FileType::Doc,
            FileType::Exe,
            FileType::Jpg,
            FileType::Pdf,
            FileType::Txt,
            FileType::Zip,
        ]
    }
}

/// One HTTP log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpEvent {
    /// When the request happened.
    pub ts: Timestamp,
    /// Acting user.
    pub user: UserId,
    /// Destination domain.
    pub domain: DomainId,
    /// Verb.
    pub activity: HttpActivity,
    /// File type involved (for download/upload), `Other` for visits.
    pub filetype: FileType,
    /// Whether the request succeeded (used by the case-study HTTP aspect).
    pub success: bool,
}

/// One email log entry (`email.csv`, coarse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmailEvent {
    /// When the email was sent.
    pub ts: Timestamp,
    /// Sending user.
    pub user: UserId,
    /// Number of recipients.
    pub recipients: u32,
    /// Total size in bytes.
    pub size: u32,
    /// Whether an attachment was included.
    pub attachment: bool,
}

/// Logon verb (`logon.csv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogonActivity {
    /// Interactive logon.
    Logon,
    /// Logoff.
    Logoff,
}

/// One logon/logoff log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogonEvent {
    /// When it happened.
    pub ts: Timestamp,
    /// Acting user.
    pub user: UserId,
    /// Target host.
    pub host: HostId,
    /// Logon or logoff.
    pub activity: LogonActivity,
    /// Whether authentication succeeded.
    pub success: bool,
}

/// Windows audit channel (enterprise case study, Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WinChannel {
    /// Windows-Event auditing (application/security/setup/system).
    Security,
    /// Microsoft-Windows-Sysmon/Operational.
    Sysmon,
    /// Microsoft-Windows-PowerShell/Operational.
    PowerShell,
    /// System channel.
    System,
}

/// One Windows event-log entry.
///
/// `object` identifies the concrete subject of the event (file path, process
/// image, registry key, …) so "unique events" and "new events" (case-study
/// features f2/f3) are countable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowsEvent {
    /// When the event was recorded.
    pub ts: Timestamp,
    /// Acting account, resolved to an employee.
    pub user: UserId,
    /// Audit channel.
    pub channel: WinChannel,
    /// Windows event id (e.g. 4688 process creation, 11 Sysmon file create).
    pub event_id: u16,
    /// Hash of the concrete object (file path / image / registry key).
    pub object: u64,
}

/// One web-proxy log entry (enterprise case study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyEvent {
    /// When the request was proxied.
    pub ts: Timestamp,
    /// Acting user.
    pub user: UserId,
    /// Destination domain.
    pub domain: DomainId,
    /// Whether the request succeeded (DNS-resolved, allowed, 2xx/3xx).
    pub success: bool,
}

/// Any audit-log event, tagged by category.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LogEvent {
    /// Removable-device activity.
    Device(DeviceEvent),
    /// File access.
    File(FileEvent),
    /// HTTP access.
    Http(HttpEvent),
    /// Email.
    Email(EmailEvent),
    /// Logon / logoff.
    Logon(LogonEvent),
    /// Windows event log (enterprise).
    Windows(WindowsEvent),
    /// Web proxy (enterprise).
    Proxy(ProxyEvent),
}

impl LogEvent {
    /// Timestamp of the inner event.
    pub fn ts(&self) -> Timestamp {
        match self {
            LogEvent::Device(e) => e.ts,
            LogEvent::File(e) => e.ts,
            LogEvent::Http(e) => e.ts,
            LogEvent::Email(e) => e.ts,
            LogEvent::Logon(e) => e.ts,
            LogEvent::Windows(e) => e.ts,
            LogEvent::Proxy(e) => e.ts,
        }
    }

    /// Acting user of the inner event.
    pub fn user(&self) -> UserId {
        match self {
            LogEvent::Device(e) => e.user,
            LogEvent::File(e) => e.user,
            LogEvent::Http(e) => e.user,
            LogEvent::Email(e) => e.user,
            LogEvent::Logon(e) => e.user,
            LogEvent::Windows(e) => e.user,
            LogEvent::Proxy(e) => e.user,
        }
    }

    /// Category tag, for bucketing and display.
    pub fn category(&self) -> LogCategory {
        match self {
            LogEvent::Device(_) => LogCategory::Device,
            LogEvent::File(_) => LogCategory::File,
            LogEvent::Http(_) => LogCategory::Http,
            LogEvent::Email(_) => LogCategory::Email,
            LogEvent::Logon(_) => LogCategory::Logon,
            LogEvent::Windows(_) => LogCategory::Windows,
            LogEvent::Proxy(_) => LogCategory::Proxy,
        }
    }
}

/// Log categories, one per source log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogCategory {
    /// `device.csv`.
    Device,
    /// `file.csv`.
    File,
    /// `http.csv`.
    Http,
    /// `email.csv`.
    Email,
    /// `logon.csv`.
    Logon,
    /// Windows event logs.
    Windows,
    /// Web-proxy logs.
    Proxy,
}

impl LogCategory {
    /// All categories in a stable order.
    pub fn all() -> [LogCategory; 7] {
        [
            LogCategory::Device,
            LogCategory::File,
            LogCategory::Http,
            LogCategory::Email,
            LogCategory::Logon,
            LogCategory::Windows,
            LogCategory::Proxy,
        ]
    }
}

impl fmt::Display for LogCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogCategory::Device => "device",
            LogCategory::File => "file",
            LogCategory::Http => "http",
            LogCategory::Email => "email",
            LogCategory::Logon => "logon",
            LogCategory::Windows => "windows",
            LogCategory::Proxy => "proxy",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Date;

    fn ts() -> Timestamp {
        Date::from_ymd(2010, 5, 3).at(10, 0, 0)
    }

    #[test]
    fn accessors_dispatch() {
        let e = LogEvent::Device(DeviceEvent {
            ts: ts(),
            user: UserId(4),
            host: HostId(2),
            activity: DeviceActivity::Connect,
        });
        assert_eq!(e.ts(), ts());
        assert_eq!(e.user(), UserId(4));
        assert_eq!(e.category(), LogCategory::Device);

        let e = LogEvent::Http(HttpEvent {
            ts: ts(),
            user: UserId(9),
            domain: DomainId(1),
            activity: HttpActivity::Upload,
            filetype: FileType::Doc,
            success: true,
        });
        assert_eq!(e.user(), UserId(9));
        assert_eq!(e.category(), LogCategory::Http);
    }

    #[test]
    fn categories_are_distinct() {
        let all = LogCategory::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(format!("{}", LogCategory::Http), "http");
    }

    #[test]
    fn upload_feature_order_is_stable() {
        let order = FileType::upload_feature_order();
        assert_eq!(order[0], FileType::Doc);
        assert_eq!(order[5], FileType::Zip);
        assert_eq!(order.len(), 6);
    }
}
