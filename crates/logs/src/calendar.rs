//! Organizational work calendar: weekends, holidays, make-up days.
//!
//! The paper's motivation (Section III) leans on calendar effects — "working
//! Mondays after holidays" cause organization-wide bursts that single-day
//! models misreport. The synthesizer uses this calendar to drive those bursts,
//! so the calendar is part of the log substrate.

use crate::time::{Date, Weekday};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A work calendar over a date range.
///
/// # Examples
///
/// ```
/// use acobe_logs::calendar::Calendar;
/// use acobe_logs::time::Date;
/// let cal = Calendar::us_style(2010..=2011);
/// assert!(cal.is_holiday(Date::from_ymd(2010, 12, 25)).is_some() || !cal.is_workday(Date::from_ymd(2010, 12, 25)));
/// assert!(cal.is_workday(Date::from_ymd(2010, 3, 2))); // an ordinary Tuesday
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Calendar {
    holidays: BTreeSet<Date>,
}

impl Calendar {
    /// An empty calendar (weekends only).
    pub fn new() -> Self {
        Self::default()
    }

    /// A calendar pre-populated with US-federal-style holidays for each year
    /// in `years`.
    pub fn us_style(years: std::ops::RangeInclusive<i32>) -> Self {
        let mut cal = Calendar::new();
        for year in years {
            for d in us_holidays(year) {
                cal.add_holiday(d);
            }
        }
        cal
    }

    /// Marks `date` as a holiday.
    pub fn add_holiday(&mut self, date: Date) {
        self.holidays.insert(date);
    }

    /// Returns `Some(date)` when the date is an explicit holiday.
    pub fn is_holiday(&self, date: Date) -> Option<Date> {
        self.holidays.get(&date).copied()
    }

    /// A workday is a non-weekend, non-holiday date.
    pub fn is_workday(&self, date: Date) -> bool {
        !date.weekday().is_weekend() && !self.holidays.contains(&date)
    }

    /// True when `date` is the first workday after at least `gap + 1`
    /// consecutive non-workdays — the paper's "busy Monday / make-up day".
    ///
    /// `gap = 1` matches an ordinary Monday after a weekend; `gap = 2`
    /// requires a long weekend (e.g. holiday Monday pushed work to Tuesday).
    pub fn is_return_day(&self, date: Date, gap: u32) -> bool {
        if !self.is_workday(date) {
            return false;
        }
        let mut run = 0u32;
        let mut d = date.add_days(-1);
        while !self.is_workday(d) {
            run += 1;
            d = d.add_days(-1);
            if run > 30 {
                break;
            }
        }
        run > gap
    }

    /// Number of consecutive non-workdays immediately before `date`.
    pub fn preceding_break_len(&self, date: Date) -> u32 {
        let mut run = 0u32;
        let mut d = date.add_days(-1);
        while !self.is_workday(d) && run <= 30 {
            run += 1;
            d = d.add_days(-1);
        }
        run
    }

    /// Iterates all holidays.
    pub fn holidays(&self) -> impl Iterator<Item = Date> + '_ {
        self.holidays.iter().copied()
    }
}

fn nth_weekday(year: i32, month: u32, weekday: Weekday, n: u32) -> Date {
    let first = Date::from_ymd(year, month, 1);
    let offset = (weekday.index() + 7 - first.weekday().index()) % 7;
    first.add_days((offset + (n - 1) * 7) as i32)
}

fn last_weekday(year: i32, month: u32, weekday: Weekday) -> Date {
    let last = Date::from_ymd(year, month, crate::time::days_in_month(year, month));
    let offset = (last.weekday().index() + 7 - weekday.index()) % 7;
    last.add_days(-(offset as i32))
}

fn observed(date: Date) -> Date {
    match date.weekday() {
        Weekday::Saturday => date.add_days(-1),
        Weekday::Sunday => date.add_days(1),
        _ => date,
    }
}

fn us_holidays(year: i32) -> Vec<Date> {
    vec![
        observed(Date::from_ymd(year, 1, 1)),
        nth_weekday(year, 1, Weekday::Monday, 3),
        nth_weekday(year, 2, Weekday::Monday, 3),
        last_weekday(year, 5, Weekday::Monday),
        observed(Date::from_ymd(year, 7, 4)),
        nth_weekday(year, 9, Weekday::Monday, 1),
        nth_weekday(year, 11, Weekday::Thursday, 4),
        nth_weekday(year, 11, Weekday::Thursday, 4).add_days(1),
        observed(Date::from_ymd(year, 12, 25)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_2010_holidays() {
        let cal = Calendar::us_style(2010..=2010);
        // 2010: New Year's Day was a Friday.
        assert!(cal.is_holiday(Date::from_ymd(2010, 1, 1)).is_some());
        // MLK day 2010 was Jan 18.
        assert!(cal.is_holiday(Date::from_ymd(2010, 1, 18)).is_some());
        // Memorial day 2010 was May 31.
        assert!(cal.is_holiday(Date::from_ymd(2010, 5, 31)).is_some());
        // July 4, 2010 was a Sunday -> observed July 5.
        assert!(cal.is_holiday(Date::from_ymd(2010, 7, 5)).is_some());
        // Thanksgiving 2010 was Nov 25; day after also off.
        assert!(cal.is_holiday(Date::from_ymd(2010, 11, 25)).is_some());
        assert!(cal.is_holiday(Date::from_ymd(2010, 11, 26)).is_some());
        // Christmas 2010 was a Saturday -> observed Dec 24.
        assert!(cal.is_holiday(Date::from_ymd(2010, 12, 24)).is_some());
    }

    #[test]
    fn workday_classification() {
        let cal = Calendar::us_style(2010..=2010);
        assert!(cal.is_workday(Date::from_ymd(2010, 3, 2)));
        assert!(!cal.is_workday(Date::from_ymd(2010, 3, 6))); // Saturday
        assert!(!cal.is_workday(Date::from_ymd(2010, 1, 18))); // MLK
    }

    #[test]
    fn return_days() {
        let cal = Calendar::us_style(2010..=2010);
        // Monday 2010-03-08 follows an ordinary weekend: a return day at gap=1
        // but not at gap=2.
        let monday = Date::from_ymd(2010, 3, 8);
        assert!(cal.is_return_day(monday, 1));
        assert!(!cal.is_return_day(monday, 2));
        // Tuesday 2010-01-19 follows MLK Monday + weekend: 3 days off.
        let tuesday = Date::from_ymd(2010, 1, 19);
        assert!(cal.is_return_day(tuesday, 2));
        assert_eq!(cal.preceding_break_len(tuesday), 3);
        // A mid-week day is not a return day.
        assert!(!cal.is_return_day(Date::from_ymd(2010, 3, 10), 1));
    }

    #[test]
    fn empty_calendar_weekends_only() {
        let cal = Calendar::new();
        assert!(cal.is_workday(Date::from_ymd(2010, 12, 24)));
        assert!(!cal.is_workday(Date::from_ymd(2010, 12, 25))); // Saturday
        assert_eq!(cal.holidays().count(), 0);
    }
}
