//! In-memory log store with day-granular access.
//!
//! Feature extraction walks the logs one day at a time (the paper aggregates
//! per `(feature, time-frame, day)`), so the store keeps events sorted by
//! timestamp and answers day-slice queries with binary search.

use crate::csv::{ParseCsvError, ToCsv};
use crate::event::LogEvent;
use crate::time::{Date, Timestamp};

/// A sorted, queryable collection of audit-log events.
///
/// Construction is push-based; [`LogStore::finalize`] (or collecting from an
/// iterator) sorts once. All query methods require a finalized store and are
/// O(log n + answer).
///
/// # Examples
///
/// ```
/// use acobe_logs::store::LogStore;
/// use acobe_logs::event::{DeviceActivity, DeviceEvent, LogEvent};
/// use acobe_logs::ids::{HostId, UserId};
/// use acobe_logs::time::Date;
///
/// let mut store = LogStore::new();
/// store.push(LogEvent::Device(DeviceEvent {
///     ts: Date::from_ymd(2010, 1, 4).at(9, 0, 0),
///     user: UserId(0),
///     host: HostId(0),
///     activity: DeviceActivity::Connect,
/// }));
/// store.finalize();
/// assert_eq!(store.day(Date::from_ymd(2010, 1, 4)).len(), 1);
/// assert_eq!(store.day(Date::from_ymd(2010, 1, 5)).len(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogStore {
    events: Vec<LogEvent>,
    sorted: bool,
}

impl LogStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        LogStore { events: Vec::new(), sorted: true }
    }

    /// Creates an empty store with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        LogStore { events: Vec::with_capacity(cap), sorted: true }
    }

    /// Appends one event. Invalidates sorting if out of order.
    pub fn push(&mut self, event: LogEvent) {
        if let Some(last) = self.events.last() {
            if event.ts() < last.ts() {
                self.sorted = false;
            }
        }
        self.events.push(event);
    }

    /// Appends many events.
    pub fn extend<I: IntoIterator<Item = LogEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }

    /// Sorts events by timestamp (stable), making queries valid.
    pub fn finalize(&mut self) {
        if !self.sorted {
            self.events.sort_by_key(|e| e.ts());
            self.sorted = true;
        }
    }

    /// True once events are in timestamp order.
    pub fn is_finalized(&self) -> bool {
        self.sorted
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the store holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in timestamp order.
    ///
    /// # Panics
    ///
    /// Panics if the store was mutated out of order and not finalized.
    pub fn events(&self) -> &[LogEvent] {
        assert!(self.sorted, "LogStore must be finalized before querying");
        &self.events
    }

    /// Events within `[start, end)` timestamps.
    pub fn range(&self, start: Timestamp, end: Timestamp) -> &[LogEvent] {
        let events = self.events();
        let lo = events.partition_point(|e| e.ts() < start);
        let hi = events.partition_point(|e| e.ts() < end);
        &events[lo..hi]
    }

    /// Events on a single civil day.
    pub fn day(&self, date: Date) -> &[LogEvent] {
        self.range(date.midnight(), date.add_days(1).midnight())
    }

    /// Events within `[start, end)` dates.
    pub fn days(&self, start: Date, end: Date) -> &[LogEvent] {
        self.range(start.midnight(), end.midnight())
    }

    /// First and last event dates, if any events exist.
    pub fn date_span(&self) -> Option<(Date, Date)> {
        let events = self.events();
        Some((events.first()?.ts().date(), events.last()?.ts().date()))
    }

    /// Serializes every event as CSV lines (one per event, timestamp order).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_csv());
            out.push('\n');
        }
        out
    }

    /// Parses a store from CSV lines produced by [`LogStore::to_csv`].
    ///
    /// Successfully decoded events count into the `logs/events_parsed`
    /// metric and blank lines into `logs/lines_skipped`, so ingest volume
    /// shows up in `acobe --metrics-out` exports.
    ///
    /// # Errors
    ///
    /// Returns the first record decode failure.
    pub fn from_csv(text: &str) -> Result<Self, ParseCsvError> {
        let _span = acobe_obs::span!("parse_logs");
        let parsed = acobe_obs::counter("logs/events_parsed");
        let skipped = acobe_obs::counter("logs/lines_skipped");
        let mut store = LogStore::new();
        let mut buf = crate::csv::RecordBuf::new();
        for line in text.lines() {
            if line.is_empty() {
                skipped.inc();
                continue;
            }
            store.push(crate::csv::parse_event(line, &mut buf)?);
            parsed.inc();
        }
        store.finalize();
        Ok(store)
    }
}

impl FromIterator<LogEvent> for LogStore {
    fn from_iter<I: IntoIterator<Item = LogEvent>>(iter: I) -> Self {
        let mut store = LogStore::new();
        store.extend(iter);
        store.finalize();
        store
    }
}

impl Extend<LogEvent> for LogStore {
    fn extend<I: IntoIterator<Item = LogEvent>>(&mut self, iter: I) {
        LogStore::extend(self, iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DeviceActivity, DeviceEvent};
    use crate::ids::{HostId, UserId};

    fn ev(day: u32, hour: u32, user: u32) -> LogEvent {
        LogEvent::Device(DeviceEvent {
            ts: Date::from_ymd(2010, 1, day).at(hour, 0, 0),
            user: UserId(user),
            host: HostId(0),
            activity: DeviceActivity::Connect,
        })
    }

    #[test]
    fn day_slices() {
        let store: LogStore = vec![ev(5, 9, 0), ev(4, 23, 1), ev(5, 7, 2), ev(6, 0, 3)]
            .into_iter()
            .collect();
        assert_eq!(store.len(), 4);
        let day5 = store.day(Date::from_ymd(2010, 1, 5));
        assert_eq!(day5.len(), 2);
        assert_eq!(day5[0].user(), UserId(2)); // 07:00 before 09:00
        assert_eq!(store.day(Date::from_ymd(2010, 1, 7)).len(), 0);
        assert_eq!(
            store
                .days(Date::from_ymd(2010, 1, 4), Date::from_ymd(2010, 1, 6))
                .len(),
            3
        );
    }

    #[test]
    fn date_span() {
        let store: LogStore = vec![ev(4, 1, 0), ev(9, 1, 0)].into_iter().collect();
        assert_eq!(
            store.date_span(),
            Some((Date::from_ymd(2010, 1, 4), Date::from_ymd(2010, 1, 9)))
        );
        assert_eq!(LogStore::new().date_span(), None);
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn unfinalized_query_panics() {
        let mut store = LogStore::new();
        store.push(ev(5, 9, 0));
        store.push(ev(4, 9, 0)); // out of order
        let _ = store.events();
    }

    #[test]
    fn csv_roundtrip() {
        let store: LogStore = vec![ev(4, 1, 0), ev(5, 2, 1)].into_iter().collect();
        let text = store.to_csv();
        let back = LogStore::from_csv(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.events()[0], store.events()[0]);
    }

    #[test]
    fn in_order_push_stays_finalized() {
        let mut store = LogStore::new();
        store.push(ev(4, 1, 0));
        store.push(ev(5, 1, 0));
        assert!(store.is_finalized());
    }
}
