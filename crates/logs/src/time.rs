//! Civil dates, timestamps and the paper's two-time-frame day split.
//!
//! The CERT dataset spans 2010-01-02 through 2011-05-31; everything here is a
//! proleptic-Gregorian calendar with no time-zone handling (the dataset is
//! recorded in a single local time), implemented without external crates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds in one day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A civil date, stored as the number of days since 1970-01-01.
///
/// # Examples
///
/// ```
/// use acobe_logs::time::Date;
/// let d = Date::from_ymd(2010, 1, 2);
/// assert_eq!(d.ymd(), (2010, 1, 2));
/// assert_eq!(d.to_string(), "2010-01-02");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date(i32);

impl Date {
    /// 1970-01-01, the epoch all dates count days from.
    pub const EPOCH: Date = Date(0);

    /// Builds a date from a year, month (1-12) and day (1-31).
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range for the given year.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year}-{month:02}-{day:02}"
        );
        Date(days_from_civil(year, month, day))
    }

    /// Builds a date from a count of days since 1970-01-01.
    pub fn from_days(days: i32) -> Self {
        Date(days)
    }

    /// The number of days since 1970-01-01 (may be negative).
    pub fn days(self) -> i32 {
        self.0
    }

    /// Decomposes into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// The year component.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// The month component (1-12).
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// The day-of-month component (1-31).
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// Day of week for this date.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday.
        let wd = (self.0.rem_euclid(7) + 4) % 7; // 0 = Sunday
        Weekday::from_index(wd as u32)
    }

    /// Returns the date `n` days later (or earlier for negative `n`).
    pub fn add_days(self, n: i32) -> Self {
        Date(self.0 + n)
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(self, other: Date) -> i32 {
        self.0 - other.0
    }

    /// Timestamp of this date's midnight.
    pub fn midnight(self) -> Timestamp {
        Timestamp::from_secs(self.0 as i64 * SECS_PER_DAY)
    }

    /// Timestamp at `hour:minute:second` on this date.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`, `minute >= 60` or `second >= 60`.
    pub fn at(self, hour: u32, minute: u32, second: u32) -> Timestamp {
        assert!(
            hour < 24 && minute < 60 && second < 60,
            "invalid wall-clock time"
        );
        Timestamp::from_secs(
            self.0 as i64 * SECS_PER_DAY + (hour * 3600 + minute * 60 + second) as i64,
        )
    }

    /// Iterates dates from `self` (inclusive) to `end` (exclusive).
    pub fn range_to(self, end: Date) -> impl Iterator<Item = Date> {
        (self.0..end.0).map(Date)
    }

    /// Parses a `YYYY-MM-DD` string.
    pub fn parse(s: &str) -> Result<Self, ParseDateError> {
        let mut parts = s.splitn(3, '-');
        let year: i32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(ParseDateError)?;
        let month: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(ParseDateError)?;
        let day: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(ParseDateError)?;
        if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
            return Err(ParseDateError);
        }
        Ok(Date::from_ymd(year, month, day))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Error returned when a date string is not `YYYY-MM-DD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDateError;

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date syntax, expected YYYY-MM-DD")
    }
}

impl std::error::Error for ParseDateError {}

/// Day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are self-describing
pub enum Weekday {
    Sunday,
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
}

impl Weekday {
    fn from_index(i: u32) -> Self {
        match i {
            0 => Weekday::Sunday,
            1 => Weekday::Monday,
            2 => Weekday::Tuesday,
            3 => Weekday::Wednesday,
            4 => Weekday::Thursday,
            5 => Weekday::Friday,
            6 => Weekday::Saturday,
            _ => unreachable!("weekday index out of range"),
        }
    }

    /// 0 = Sunday .. 6 = Saturday.
    pub fn index(self) -> u32 {
        self as u32
    }

    /// True for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// An absolute point in time, stored as Unix seconds.
///
/// # Examples
///
/// ```
/// use acobe_logs::time::{Date, TimeFrame, Timestamp};
/// let ts = Date::from_ymd(2010, 3, 1).at(9, 30, 0);
/// assert_eq!(ts.date(), Date::from_ymd(2010, 3, 1));
/// assert_eq!(ts.hour(), 9);
/// assert_eq!(ts.time_frame(), TimeFrame::Working);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(i64);

impl Timestamp {
    /// Builds from Unix seconds.
    pub fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Unix seconds.
    pub fn secs(self) -> i64 {
        self.0
    }

    /// The civil date containing this instant.
    pub fn date(self) -> Date {
        Date(self.0.div_euclid(SECS_PER_DAY) as i32)
    }

    /// Hour of day, 0-23.
    pub fn hour(self) -> u32 {
        (self.0.rem_euclid(SECS_PER_DAY) / 3600) as u32
    }

    /// Minute of hour, 0-59.
    pub fn minute(self) -> u32 {
        (self.0.rem_euclid(3600) / 60) as u32
    }

    /// Second of minute, 0-59.
    pub fn second(self) -> u32 {
        self.0.rem_euclid(60) as u32
    }

    /// The paper's two-frame split: working hours 06:00-18:00, off hours otherwise.
    pub fn time_frame(self) -> TimeFrame {
        TimeFrame::of_hour(self.hour())
    }

    /// Returns the timestamp `secs` seconds later.
    pub fn add_secs(self, secs: i64) -> Self {
        Timestamp(self.0 + secs)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date(),
            self.hour(),
            self.minute(),
            self.second()
        )
    }
}

/// The paper's per-day time frames (Section IV-A): `T = 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeFrame {
    /// 06:00 (inclusive) - 18:00 (exclusive).
    Working,
    /// 18:00 - 06:00.
    Off,
}

impl TimeFrame {
    /// Number of frames per day.
    pub const COUNT: usize = 2;

    /// Classifies an hour of day.
    pub fn of_hour(hour: u32) -> Self {
        if (6..18).contains(&hour) {
            TimeFrame::Working
        } else {
            TimeFrame::Off
        }
    }

    /// Index of this frame: Working = 0, Off = 1.
    pub fn index(self) -> usize {
        match self {
            TimeFrame::Working => 0,
            TimeFrame::Off => 1,
        }
    }

    /// All frames in index order.
    pub fn all() -> [TimeFrame; 2] {
        [TimeFrame::Working, TimeFrame::Off]
    }
}

impl fmt::Display for TimeFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeFrame::Working => write!(f, "working"),
            TimeFrame::Off => write!(f, "off"),
        }
    }
}

/// True for leap years.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in a month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range: {month}"),
    }
}

// Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

// Howard Hinnant's `civil_from_days` algorithm.
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        let d = Date::from_ymd(1970, 1, 1);
        assert_eq!(d.days(), 0);
        assert_eq!(d.ymd(), (1970, 1, 1));
        assert_eq!(d.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_weekdays() {
        assert_eq!(Date::from_ymd(2010, 1, 2).weekday(), Weekday::Saturday);
        assert_eq!(Date::from_ymd(2010, 1, 4).weekday(), Weekday::Monday);
        assert_eq!(Date::from_ymd(2011, 5, 31).weekday(), Weekday::Tuesday);
        assert_eq!(Date::from_ymd(2026, 7, 5).weekday(), Weekday::Sunday);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2008));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2010));
        assert_eq!(days_in_month(2008, 2), 29);
        assert_eq!(days_in_month(2010, 2), 28);
    }

    #[test]
    fn date_arithmetic() {
        let a = Date::from_ymd(2010, 12, 30);
        let b = a.add_days(5);
        assert_eq!(b, Date::from_ymd(2011, 1, 4));
        assert_eq!(b.days_since(a), 5);
    }

    #[test]
    fn date_display_and_parse() {
        let d = Date::from_ymd(2010, 3, 7);
        assert_eq!(d.to_string(), "2010-03-07");
        assert_eq!(Date::parse("2010-03-07"), Ok(d));
        assert!(Date::parse("2010-13-01").is_err());
        assert!(Date::parse("2010-02-30").is_err());
        assert!(Date::parse("garbage").is_err());
    }

    #[test]
    fn timestamp_components() {
        let ts = Date::from_ymd(2010, 6, 15).at(17, 59, 59);
        assert_eq!(ts.hour(), 17);
        assert_eq!(ts.minute(), 59);
        assert_eq!(ts.second(), 59);
        assert_eq!(ts.time_frame(), TimeFrame::Working);
        let ts2 = ts.add_secs(1);
        assert_eq!(ts2.hour(), 18);
        assert_eq!(ts2.time_frame(), TimeFrame::Off);
    }

    #[test]
    fn time_frame_boundaries() {
        assert_eq!(TimeFrame::of_hour(5), TimeFrame::Off);
        assert_eq!(TimeFrame::of_hour(6), TimeFrame::Working);
        assert_eq!(TimeFrame::of_hour(17), TimeFrame::Working);
        assert_eq!(TimeFrame::of_hour(18), TimeFrame::Off);
        assert_eq!(TimeFrame::of_hour(0), TimeFrame::Off);
    }

    #[test]
    fn negative_timestamp_components() {
        // One second before epoch is 1969-12-31 23:59:59.
        let ts = Timestamp::from_secs(-1);
        assert_eq!(ts.date(), Date::from_ymd(1969, 12, 31));
        assert_eq!(ts.hour(), 23);
        assert_eq!(ts.second(), 59);
    }

    #[test]
    fn range_iteration() {
        let start = Date::from_ymd(2010, 1, 30);
        let end = Date::from_ymd(2010, 2, 2);
        let v: Vec<String> = start.range_to(end).map(|d| d.to_string()).collect();
        assert_eq!(v, ["2010-01-30", "2010-01-31", "2010-02-01"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// days -> (y, m, d) -> days is the identity over ±100 years.
        #[test]
        fn civil_roundtrip(days in -36_525i32..36_525) {
            let date = Date::from_days(days);
            let (y, m, d) = date.ymd();
            prop_assert_eq!(Date::from_ymd(y, m, d), date);
            prop_assert!((1..=12).contains(&m));
            prop_assert!((1..=31).contains(&d));
        }

        /// Display/parse roundtrip.
        #[test]
        fn display_parse_roundtrip(days in -36_525i32..36_525) {
            let date = Date::from_days(days);
            prop_assert_eq!(Date::parse(&date.to_string()), Ok(date));
        }

        /// Consecutive days have consecutive weekdays.
        #[test]
        fn weekday_cycle(days in -36_525i32..36_525) {
            let today = Date::from_days(days).weekday().index();
            let tomorrow = Date::from_days(days + 1).weekday().index();
            prop_assert_eq!((today + 1) % 7, tomorrow);
        }

        /// Timestamp components always reconstruct the timestamp.
        #[test]
        fn timestamp_components_consistent(secs in -3_000_000_000i64..3_000_000_000) {
            let ts = Timestamp::from_secs(secs);
            let rebuilt = ts.date().at(ts.hour(), ts.minute(), ts.second());
            prop_assert_eq!(rebuilt, ts);
        }
    }
}
