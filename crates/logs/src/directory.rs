//! LDAP-style organizational directory.
//!
//! The paper defines peer groups by "the third-tier organizational unit listed
//! in the LDAP logs" (Section V-A2). This directory maps users to departments
//! and exposes department rosters, which is everything the group-behavior
//! machinery needs.

use crate::ids::{DeptId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One directory entry for a user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryEntry {
    /// The user.
    pub user: UserId,
    /// Department (third-tier organizational unit).
    pub dept: DeptId,
    /// Display name, CERT-style (e.g. `JPH1910`).
    pub name: String,
    /// Role string (e.g. `Engineer`), informational only.
    pub role: String,
}

/// An organizational directory: users, departments, rosters.
///
/// # Examples
///
/// ```
/// use acobe_logs::directory::Directory;
/// use acobe_logs::ids::{DeptId, UserId};
/// let mut dir = Directory::new();
/// dir.add(UserId(0), DeptId(0), "JPH1910", "Engineer");
/// dir.add(UserId(1), DeptId(0), "ACM2278", "Engineer");
/// assert_eq!(dir.dept_of(UserId(0)), Some(DeptId(0)));
/// assert_eq!(dir.members(DeptId(0)).len(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Directory {
    entries: BTreeMap<UserId, DirectoryEntry>,
    rosters: BTreeMap<DeptId, Vec<UserId>>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user in a department.
    ///
    /// Re-adding an existing user moves them to the new department.
    pub fn add(&mut self, user: UserId, dept: DeptId, name: &str, role: &str) {
        if let Some(prev) = self.entries.get(&user) {
            let prev_dept = prev.dept;
            if let Some(r) = self.rosters.get_mut(&prev_dept) {
                r.retain(|u| *u != user);
            }
        }
        self.entries.insert(
            user,
            DirectoryEntry {
                user,
                dept,
                name: name.to_string(),
                role: role.to_string(),
            },
        );
        self.rosters.entry(dept).or_default().push(user);
    }

    /// Department of `user`, if registered.
    pub fn dept_of(&self, user: UserId) -> Option<DeptId> {
        self.entries.get(&user).map(|e| e.dept)
    }

    /// Full entry for `user`, if registered.
    pub fn entry(&self, user: UserId) -> Option<&DirectoryEntry> {
        self.entries.get(&user)
    }

    /// Users in `dept`, in registration order (empty slice if unknown).
    pub fn members(&self, dept: DeptId) -> &[UserId] {
        self.rosters.get(&dept).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All departments with at least one member.
    pub fn departments(&self) -> impl Iterator<Item = DeptId> + '_ {
        self.rosters
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(d, _)| *d)
    }

    /// All registered users.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.entries.keys().copied()
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no users are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds a user by display name (linear scan; for tests and tooling).
    pub fn find_by_name(&self, name: &str) -> Option<UserId> {
        self.entries
            .values()
            .find(|e| e.name == name)
            .map(|e| e.user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut dir = Directory::new();
        dir.add(UserId(0), DeptId(1), "AAA0001", "Engineer");
        dir.add(UserId(1), DeptId(1), "BBB0002", "Analyst");
        dir.add(UserId(2), DeptId(2), "CCC0003", "Manager");
        assert_eq!(dir.len(), 3);
        assert_eq!(dir.dept_of(UserId(1)), Some(DeptId(1)));
        assert_eq!(dir.members(DeptId(1)), &[UserId(0), UserId(1)]);
        assert_eq!(dir.members(DeptId(9)), &[] as &[UserId]);
        assert_eq!(dir.departments().count(), 2);
        assert_eq!(dir.find_by_name("CCC0003"), Some(UserId(2)));
        assert_eq!(dir.find_by_name("nope"), None);
    }

    #[test]
    fn reassignment_moves_roster() {
        let mut dir = Directory::new();
        dir.add(UserId(0), DeptId(1), "AAA0001", "Engineer");
        dir.add(UserId(0), DeptId(2), "AAA0001", "Engineer");
        assert_eq!(dir.members(DeptId(1)), &[] as &[UserId]);
        assert_eq!(dir.members(DeptId(2)), &[UserId(0)]);
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn empty_directory() {
        let dir = Directory::new();
        assert!(dir.is_empty());
        assert_eq!(dir.dept_of(UserId(0)), None);
    }
}
