//! Minimal CSV codec for CERT-style log files.
//!
//! The CERT dataset ships as CSV files (`device.csv`, `file.csv`, …). This
//! module provides a small, dependency-free reader/writer pair with RFC-4180
//! quoting, plus [`ToCsv`]/[`FromCsv`] implementations for every event type so
//! synthesized datasets can be exported and re-imported losslessly.

use crate::event::*;
use crate::ids::{DomainId, FileId, HostId, UserId};
use crate::time::{Date, Timestamp};
use std::fmt;

/// Error produced when a CSV line cannot be decoded into an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// Human-readable cause.
    pub reason: String,
}

impl ParseCsvError {
    fn new(reason: impl Into<String>) -> Self {
        ParseCsvError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid csv record: {}", self.reason)
    }
}

impl std::error::Error for ParseCsvError {}

/// Writes one CSV record (no trailing newline), quoting fields that need it.
///
/// # Examples
///
/// ```
/// use acobe_logs::csv::write_record;
/// assert_eq!(write_record(&["a", "b,c", "d\"e"]), "a,\"b,c\",\"d\"\"e\"");
/// ```
pub fn write_record(fields: &[&str]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            out.push('"');
            for ch in f.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out
}

/// SWAR zero-byte detector: a set high bit per byte of `x` that is zero.
#[inline]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Position of the first `needle` in `hay`, scanning eight bytes per step.
///
/// The splitters below spend most of their time looking for one delimiter
/// byte in delimiter-free runs; a word-at-a-time scan keeps them from
/// crawling the haystack a byte per iteration (std's `memchr` is not public,
/// so this is the classic SWAR formulation of the same idea).
#[inline]
fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let pat = u64::from_ne_bytes([needle; 8]);
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte window"));
        let m = zero_bytes(w ^ pat);
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// Position of the first `a` or `b` in `hay`, scanning eight bytes per step.
#[inline]
fn find_either(hay: &[u8], a: u8, b: u8) -> Option<usize> {
    let pa = u64::from_ne_bytes([a; 8]);
    let pb = u64::from_ne_bytes([b; 8]);
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte window"));
        let m = zero_bytes(w ^ pa) | zero_bytes(w ^ pb);
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&c| c == a || c == b)
        .map(|p| i + p)
}

/// Splits one CSV record into owned fields, honoring RFC-4180 quoting.
///
/// This is the allocating convenience wrapper (one `Vec<String>` per record)
/// kept for API compatibility; hot paths should reuse a [`RecordBuf`] and
/// borrow the fields instead.
///
/// # Errors
///
/// Returns an error for an unterminated quoted field.
pub fn parse_record(line: &str) -> Result<Vec<String>, ParseCsvError> {
    let mut buf = RecordBuf::new();
    Ok(buf.parse(line)?.iter().map(str::to_owned).collect())
}

/// Where one parsed field's bytes live: in the source line or, for quoted
/// fields that needed unescaping, in the [`RecordBuf`] scratch buffer.
#[derive(Debug, Clone, Copy)]
struct FieldSpan {
    start: u32,
    end: u32,
    scratch: bool,
}

/// Reusable zero-copy CSV record splitter.
///
/// [`RecordBuf::parse`] records field *spans* into the input line instead of
/// copying field content: unquoted fields and quoted fields without escape
/// sequences borrow straight from the line, and only fields that actually
/// contain `""` escapes (or mix quoted and bare segments) are normalized into
/// an internal scratch buffer. Reusing one `RecordBuf` across records makes
/// the steady state allocation-free.
///
/// # Examples
///
/// ```
/// use acobe_logs::csv::RecordBuf;
/// let mut buf = RecordBuf::new();
/// let fields = buf.parse("a,\"b,c\",\"d\"\"e\"").unwrap();
/// assert_eq!(fields.len(), 3);
/// assert_eq!(fields.get(1), Some("b,c"));
/// assert_eq!(fields.get(2), Some("d\"e"));
/// ```
#[derive(Debug, Default)]
pub struct RecordBuf {
    spans: Vec<FieldSpan>,
    scratch: String,
}

impl RecordBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        RecordBuf::default()
    }

    /// Splits `line` into borrowed fields, honoring RFC-4180 quoting.
    ///
    /// # Errors
    ///
    /// Returns an error for an unterminated quoted field. The grammar is
    /// byte-for-byte the one [`parse_record`] has always accepted, including
    /// its lenient treatment of stray quotes inside unquoted fields.
    pub fn parse<'a>(&'a mut self, line: &'a str) -> Result<Fields<'a>, ParseCsvError> {
        self.spans.clear();
        self.scratch.clear();
        let bytes = line.as_bytes();
        // Fast path: while no quote has appeared, every field is a plain
        // comma-delimited slice of the line; one word-at-a-time scan finds
        // each delimiter. The first quote bails out to the full grammar.
        let mut start = 0usize;
        let mut quoteless = true;
        while let Some(p) = find_either(&bytes[start..], b',', b'"') {
            let i = start + p;
            if bytes[i] == b'"' {
                quoteless = false;
                break;
            }
            self.spans.push(FieldSpan {
                start: start as u32,
                end: i as u32,
                scratch: false,
            });
            start = i + 1;
        }
        if quoteless {
            self.spans.push(FieldSpan {
                start: start as u32,
                end: bytes.len() as u32,
                scratch: false,
            });
        } else {
            self.spans.clear();
            self.parse_quoted(line)?;
        }
        Ok(Fields {
            line,
            scratch: &self.scratch,
            spans: &self.spans,
        })
    }

    /// Slow path for records containing at least one quote. A field either
    /// starts with a quote (quoted content + optional literal tail) or is
    /// fully literal; only escaped quotes and quoted-plus-tail mixtures are
    /// copied into the scratch buffer.
    fn parse_quoted(&mut self, line: &str) -> Result<(), ParseCsvError> {
        let bytes = line.as_bytes();
        let n = bytes.len();
        let mut i = 0usize;
        loop {
            // One field starts at `i`.
            if i < n && bytes[i] == b'"' {
                // Quoted field: content until the closing quote, `""` is an
                // escaped quote.
                i += 1;
                let content_start = i;
                let mut has_escape = false;
                loop {
                    if i >= n {
                        return Err(ParseCsvError::new("unterminated quoted field"));
                    }
                    if bytes[i] == b'"' {
                        if i + 1 < n && bytes[i + 1] == b'"' {
                            has_escape = true;
                            i += 2;
                        } else {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                let content_end = i;
                i += 1; // past the closing quote
                        // Anything between the closing quote and the next comma is
                        // literal tail content (the historical lenient grammar).
                let tail_start = i;
                while i < n && bytes[i] != b',' {
                    i += 1;
                }
                if !has_escape && tail_start == i {
                    self.spans.push(FieldSpan {
                        start: content_start as u32,
                        end: content_end as u32,
                        scratch: false,
                    });
                } else {
                    let s_start = self.scratch.len() as u32;
                    let mut j = content_start;
                    let mut run = content_start;
                    while j < content_end {
                        if bytes[j] == b'"' {
                            self.scratch.push_str(&line[run..j + 1]); // keep one quote
                            j += 2; // skip the escape pair
                            run = j;
                        } else {
                            j += 1;
                        }
                    }
                    self.scratch.push_str(&line[run..content_end]);
                    self.scratch.push_str(&line[tail_start..i]);
                    self.spans.push(FieldSpan {
                        start: s_start,
                        end: self.scratch.len() as u32,
                        scratch: true,
                    });
                }
            } else {
                // Literal field (stray quotes after the first byte are
                // content, matching the historical parser).
                let start = i;
                while i < n && bytes[i] != b',' {
                    i += 1;
                }
                self.spans.push(FieldSpan {
                    start: start as u32,
                    end: i as u32,
                    scratch: false,
                });
            }
            if i >= n {
                return Ok(());
            }
            debug_assert_eq!(bytes[i], b',');
            i += 1; // past the comma; an empty trailing field parses next turn
        }
    }
}

/// Borrowed view of one parsed record's fields.
///
/// Produced by [`RecordBuf::parse`]; fields borrow from the input line (or
/// the buffer's scratch space) for the lifetime of the borrow.
#[derive(Debug, Clone, Copy)]
pub struct Fields<'a> {
    line: &'a str,
    scratch: &'a str,
    spans: &'a [FieldSpan],
}

impl<'a> Fields<'a> {
    /// Number of fields (always at least 1).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the record has no fields (never, for a parsed record; kept
    /// for sub-views produced by [`Fields::tail`]).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Field `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<&'a str> {
        let span = self.spans.get(i)?;
        let src = if span.scratch {
            self.scratch
        } else {
            self.line
        };
        Some(&src[span.start as usize..span.end as usize])
    }

    /// Iterates the fields in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a str> + '_ {
        (0..self.len()).map(|i| self.get(i).expect("in range"))
    }

    /// Sub-view starting at field `from` (used to strip the category tag
    /// before dispatching to a concrete event parser).
    pub fn tail(&self, from: usize) -> Fields<'a> {
        Fields {
            line: self.line,
            scratch: self.scratch,
            spans: &self.spans[from.min(self.spans.len())..],
        }
    }
}

/// Length of the longest prefix of `buf` ending on a record boundary: one
/// past the last newline at even quote parity. `buf` must itself start on a
/// record boundary (true for the file start and for any suffix produced by a
/// previous call). Returns `None` when the block contains no complete record
/// — the caller should grow the buffer and retry.
///
/// Newlines inside quoted fields sit at odd parity and are never treated as
/// boundaries, so chunks split here can be parsed independently.
pub fn complete_record_prefix(buf: &[u8]) -> Option<usize> {
    let mut last = None;
    let mut pos = 0usize;
    while let Some(p) = find_either(&buf[pos..], b'\n', b'"') {
        let i = pos + p;
        if buf[i] == b'\n' {
            last = Some(i + 1);
            pos = i + 1;
        } else {
            match find_byte(&buf[i + 1..], b'"') {
                Some(q) => pos = i + q + 2,
                None => break, // unterminated quote: no boundary past it
            }
        }
    }
    last
}

/// Iterator over the records of a record-aligned byte chunk.
///
/// Splits on newlines at even quote parity (so quoted fields may embed
/// newlines), strips one trailing `\r` per record (like [`str::lines`]), and
/// yields raw byte slices — callers decide how to handle non-UTF-8 content.
/// A chunk produced by [`complete_record_prefix`] yields only complete
/// records; an unterminated trailing record (no final newline) is still
/// yielded so nothing is silently dropped.
#[derive(Debug, Clone)]
pub struct RecordSlices<'a> {
    buf: &'a [u8],
}

impl<'a> Iterator for RecordSlices<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.buf.is_empty() {
            return None;
        }
        // Outside quotes, scan for the next newline or opening quote; inside
        // quotes only the closing quote matters (embedded newlines are
        // content). Both scans go a word at a time.
        let mut pos = 0usize;
        loop {
            let Some(p) = find_either(&self.buf[pos..], b'\n', b'"') else {
                break;
            };
            let i = pos + p;
            if self.buf[i] == b'\n' {
                let (rec, rest) = self.buf.split_at(i);
                self.buf = &rest[1..];
                return Some(strip_cr(rec));
            }
            match find_byte(&self.buf[i + 1..], b'"') {
                Some(q) => pos = i + q + 2,
                None => break, // unterminated quote: the rest is one record
            }
        }
        let rec = self.buf;
        self.buf = &[];
        Some(strip_cr(rec))
    }
}

fn strip_cr(rec: &[u8]) -> &[u8] {
    match rec.last() {
        Some(b'\r') => &rec[..rec.len() - 1],
        _ => rec,
    }
}

/// Iterates the records of a record-aligned chunk. See [`RecordSlices`].
pub fn record_slices(chunk: &[u8]) -> RecordSlices<'_> {
    RecordSlices { buf: chunk }
}

fn fmt_ts(ts: Timestamp) -> String {
    ts.to_string()
}

fn parse_ts(s: &str) -> Result<Timestamp, ParseCsvError> {
    let (date_part, time_part) = s
        .split_once(' ')
        .ok_or_else(|| ParseCsvError::new(format!("bad timestamp: {s}")))?;
    let date =
        Date::parse(date_part).map_err(|_| ParseCsvError::new(format!("bad date: {date_part}")))?;
    let mut it = time_part.splitn(3, ':');
    let h: u32 = it
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ParseCsvError::new("bad hour"))?;
    let m: u32 = it
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ParseCsvError::new("bad minute"))?;
    let sec: u32 = it
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ParseCsvError::new("bad second"))?;
    if h >= 24 || m >= 60 || sec >= 60 {
        return Err(ParseCsvError::new(format!("bad wall clock: {time_part}")));
    }
    Ok(date.at(h, m, sec))
}

/// Decodes the canonical fixed-width `YYYY-MM-DD HH:MM:SS` layout written by
/// [`ToCsv`] with straight digit arithmetic; any deviation falls back to the
/// flexible [`parse_ts`] so accepted inputs and error text stay identical.
fn parse_ts_fast(s: &str) -> Result<Timestamp, ParseCsvError> {
    let b = s.as_bytes();
    if b.len() == 19
        && b[4] == b'-'
        && b[7] == b'-'
        && b[10] == b' '
        && b[13] == b':'
        && b[16] == b':'
    {
        if let Some(ts) = decode_canonical_ts(b) {
            return Ok(ts);
        }
    }
    parse_ts(s)
}

std::thread_local! {
    /// Last canonical date decoded on this thread (`YYYY-MM-DD` bytes and
    /// the resulting [`Date`]). Log files arrive day-clustered, so the
    /// civil→epoch conversion almost always short-circuits here. The initial
    /// key can never equal a digits-and-dashes date, so it never false-hits.
    static LAST_DATE: std::cell::Cell<([u8; 10], Date)> =
        const { std::cell::Cell::new(([0xff; 10], Date::EPOCH)) };
}

fn decode_canonical_ts(b: &[u8]) -> Option<Timestamp> {
    fn d2(bytes: &[u8], i: usize) -> Option<u32> {
        let hi = bytes[i];
        let lo = bytes[i + 1];
        if hi.is_ascii_digit() && lo.is_ascii_digit() {
            Some((hi - b'0') as u32 * 10 + (lo - b'0') as u32)
        } else {
            None
        }
    }
    let hour = d2(b, 11)?;
    let minute = d2(b, 14)?;
    let second = d2(b, 17)?;
    if hour >= 24 || minute >= 60 || second >= 60 {
        return None; // let the flexible path produce its usual error
    }
    let key: [u8; 10] = b[..10].try_into().expect("canonical date prefix");
    let (last_key, last_date) = LAST_DATE.get();
    let date = if key == last_key {
        last_date
    } else {
        let year = (d2(b, 0)? * 100 + d2(b, 2)?) as i32;
        let month = d2(b, 5)?;
        let day = d2(b, 8)?;
        if !(1..=12).contains(&month) || day < 1 || day > crate::time::days_in_month(year, month) {
            return None;
        }
        let date = Date::from_ymd(year, month, day);
        LAST_DATE.set((key, date));
        date
    };
    Some(date.at(hour, minute, second))
}

fn parse_u32(s: &str, what: &str) -> Result<u32, ParseCsvError> {
    // Digit-loop fast path for the plain decimal integers we write ourselves;
    // anything else (empty, signs, overflow-length) goes through `str::parse`
    // so accepted inputs like `+5` keep parsing exactly as before.
    let b = s.as_bytes();
    if !b.is_empty() && b.len() <= 9 && b.iter().all(|c| c.is_ascii_digit()) {
        let mut v = 0u32;
        for &c in b {
            v = v * 10 + (c - b'0') as u32;
        }
        return Ok(v);
    }
    s.parse()
        .map_err(|_| ParseCsvError::new(format!("bad {what}: {s}")))
}

/// Types that can be encoded as one CSV record.
pub trait ToCsv {
    /// Encodes to a CSV line without a trailing newline.
    fn to_csv(&self) -> String;
}

/// Types that can be decoded from one CSV record.
pub trait FromCsv: Sized {
    /// Decodes from a CSV line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCsvError`] when the record is malformed.
    fn from_csv(line: &str) -> Result<Self, ParseCsvError>;
}

/// Types that can be decoded from an already-split borrowed record view.
///
/// This is the zero-copy counterpart of [`FromCsv`]: the caller owns a
/// [`RecordBuf`], parses each line into [`Fields`] and hands the view here, so
/// decoding a record allocates nothing beyond the event itself.
pub trait FromCsvFields: Sized {
    /// Decodes from the fields of one record.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCsvError`] when the field count or content is malformed.
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError>;
}

/// Parses one tagged `category,...` log line, reusing `buf` for field storage.
///
/// Equivalent to [`LogEvent::from_csv`] but allocation-free in steady state.
///
/// # Errors
///
/// Returns [`ParseCsvError`] when the record is malformed.
pub fn parse_event(line: &str, buf: &mut RecordBuf) -> Result<LogEvent, ParseCsvError> {
    let f = buf.parse(line)?;
    LogEvent::from_fields(&f)
}

impl ToCsv for DeviceEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            DeviceActivity::Connect => "Connect",
            DeviceActivity::Disconnect => "Disconnect",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.host.0.to_string(),
            act,
        ])
    }
}

impl FromCsvFields for DeviceEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        if f.len() != 4 {
            return Err(ParseCsvError::new("device record needs 4 fields"));
        }
        let activity = match f.get(3).unwrap_or_default() {
            "Connect" => DeviceActivity::Connect,
            "Disconnect" => DeviceActivity::Disconnect,
            other => return Err(ParseCsvError::new(format!("bad device activity: {other}"))),
        };
        Ok(DeviceEvent {
            ts: parse_ts_fast(f.get(0).unwrap_or_default())?,
            user: UserId(parse_u32(f.get(1).unwrap_or_default(), "user")?),
            host: HostId(parse_u32(f.get(2).unwrap_or_default(), "host")?),
            activity,
        })
    }
}

impl FromCsv for DeviceEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        DeviceEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

fn loc_str(l: Location) -> &'static str {
    match l {
        Location::Local => "Local",
        Location::Remote => "Remote",
    }
}

fn parse_loc(s: &str) -> Result<Location, ParseCsvError> {
    match s {
        "Local" => Ok(Location::Local),
        "Remote" => Ok(Location::Remote),
        other => Err(ParseCsvError::new(format!("bad location: {other}"))),
    }
}

impl ToCsv for FileEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            FileActivity::Open => "Open",
            FileActivity::Write => "Write",
            FileActivity::Copy => "Copy",
            FileActivity::Delete => "Delete",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.host.0.to_string(),
            &self.file.0.to_string(),
            act,
            loc_str(self.from),
            loc_str(self.to),
        ])
    }
}

impl FromCsvFields for FileEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        if f.len() != 7 {
            return Err(ParseCsvError::new("file record needs 7 fields"));
        }
        let activity = match f.get(4).unwrap_or_default() {
            "Open" => FileActivity::Open,
            "Write" => FileActivity::Write,
            "Copy" => FileActivity::Copy,
            "Delete" => FileActivity::Delete,
            other => return Err(ParseCsvError::new(format!("bad file activity: {other}"))),
        };
        Ok(FileEvent {
            ts: parse_ts_fast(f.get(0).unwrap_or_default())?,
            user: UserId(parse_u32(f.get(1).unwrap_or_default(), "user")?),
            host: HostId(parse_u32(f.get(2).unwrap_or_default(), "host")?),
            file: FileId(parse_u32(f.get(3).unwrap_or_default(), "file")?),
            activity,
            from: parse_loc(f.get(5).unwrap_or_default())?,
            to: parse_loc(f.get(6).unwrap_or_default())?,
        })
    }
}

impl FromCsv for FileEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        FileEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

fn filetype_str(ft: FileType) -> &'static str {
    match ft {
        FileType::Doc => "doc",
        FileType::Exe => "exe",
        FileType::Jpg => "jpg",
        FileType::Pdf => "pdf",
        FileType::Txt => "txt",
        FileType::Zip => "zip",
        FileType::Other => "other",
    }
}

fn parse_filetype(s: &str) -> Result<FileType, ParseCsvError> {
    Ok(match s {
        "doc" => FileType::Doc,
        "exe" => FileType::Exe,
        "jpg" => FileType::Jpg,
        "pdf" => FileType::Pdf,
        "txt" => FileType::Txt,
        "zip" => FileType::Zip,
        "other" => FileType::Other,
        other => return Err(ParseCsvError::new(format!("bad filetype: {other}"))),
    })
}

impl ToCsv for HttpEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            HttpActivity::Visit => "Visit",
            HttpActivity::Download => "Download",
            HttpActivity::Upload => "Upload",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.domain.0.to_string(),
            act,
            filetype_str(self.filetype),
            if self.success { "1" } else { "0" },
        ])
    }
}

impl FromCsvFields for HttpEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        if f.len() != 6 {
            return Err(ParseCsvError::new("http record needs 6 fields"));
        }
        let activity = match f.get(3).unwrap_or_default() {
            "Visit" => HttpActivity::Visit,
            "Download" => HttpActivity::Download,
            "Upload" => HttpActivity::Upload,
            other => return Err(ParseCsvError::new(format!("bad http activity: {other}"))),
        };
        Ok(HttpEvent {
            ts: parse_ts_fast(f.get(0).unwrap_or_default())?,
            user: UserId(parse_u32(f.get(1).unwrap_or_default(), "user")?),
            domain: DomainId(parse_u32(f.get(2).unwrap_or_default(), "domain")?),
            activity,
            filetype: parse_filetype(f.get(4).unwrap_or_default())?,
            success: f.get(5) == Some("1"),
        })
    }
}

impl FromCsv for HttpEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        HttpEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

impl ToCsv for EmailEvent {
    fn to_csv(&self) -> String {
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.recipients.to_string(),
            &self.size.to_string(),
            if self.attachment { "1" } else { "0" },
        ])
    }
}

impl FromCsvFields for EmailEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        if f.len() != 5 {
            return Err(ParseCsvError::new("email record needs 5 fields"));
        }
        Ok(EmailEvent {
            ts: parse_ts_fast(f.get(0).unwrap_or_default())?,
            user: UserId(parse_u32(f.get(1).unwrap_or_default(), "user")?),
            recipients: parse_u32(f.get(2).unwrap_or_default(), "recipients")?,
            size: parse_u32(f.get(3).unwrap_or_default(), "size")?,
            attachment: f.get(4) == Some("1"),
        })
    }
}

impl FromCsv for EmailEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        EmailEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

impl ToCsv for LogonEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            LogonActivity::Logon => "Logon",
            LogonActivity::Logoff => "Logoff",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.host.0.to_string(),
            act,
            if self.success { "1" } else { "0" },
        ])
    }
}

impl FromCsvFields for LogonEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        if f.len() != 5 {
            return Err(ParseCsvError::new("logon record needs 5 fields"));
        }
        let activity = match f.get(3).unwrap_or_default() {
            "Logon" => LogonActivity::Logon,
            "Logoff" => LogonActivity::Logoff,
            other => return Err(ParseCsvError::new(format!("bad logon activity: {other}"))),
        };
        Ok(LogonEvent {
            ts: parse_ts_fast(f.get(0).unwrap_or_default())?,
            user: UserId(parse_u32(f.get(1).unwrap_or_default(), "user")?),
            host: HostId(parse_u32(f.get(2).unwrap_or_default(), "host")?),
            activity,
            success: f.get(4) == Some("1"),
        })
    }
}

impl FromCsv for LogonEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        LogonEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

impl ToCsv for WindowsEvent {
    fn to_csv(&self) -> String {
        let chan = match self.channel {
            WinChannel::Security => "Security",
            WinChannel::Sysmon => "Sysmon",
            WinChannel::PowerShell => "PowerShell",
            WinChannel::System => "System",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            chan,
            &self.event_id.to_string(),
            &self.object.to_string(),
        ])
    }
}

impl FromCsvFields for WindowsEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        if f.len() != 5 {
            return Err(ParseCsvError::new("windows record needs 5 fields"));
        }
        let channel = match f.get(2).unwrap_or_default() {
            "Security" => WinChannel::Security,
            "Sysmon" => WinChannel::Sysmon,
            "PowerShell" => WinChannel::PowerShell,
            "System" => WinChannel::System,
            other => return Err(ParseCsvError::new(format!("bad channel: {other}"))),
        };
        let event_id = f.get(3).unwrap_or_default();
        let object = f.get(4).unwrap_or_default();
        Ok(WindowsEvent {
            ts: parse_ts_fast(f.get(0).unwrap_or_default())?,
            user: UserId(parse_u32(f.get(1).unwrap_or_default(), "user")?),
            channel,
            event_id: event_id
                .parse()
                .map_err(|_| ParseCsvError::new(format!("bad event id: {event_id}")))?,
            object: object
                .parse()
                .map_err(|_| ParseCsvError::new(format!("bad object: {object}")))?,
        })
    }
}

impl FromCsv for WindowsEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        WindowsEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

impl ToCsv for ProxyEvent {
    fn to_csv(&self) -> String {
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.domain.0.to_string(),
            if self.success { "1" } else { "0" },
        ])
    }
}

impl FromCsvFields for ProxyEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        if f.len() != 4 {
            return Err(ParseCsvError::new("proxy record needs 4 fields"));
        }
        Ok(ProxyEvent {
            ts: parse_ts_fast(f.get(0).unwrap_or_default())?,
            user: UserId(parse_u32(f.get(1).unwrap_or_default(), "user")?),
            domain: DomainId(parse_u32(f.get(2).unwrap_or_default(), "domain")?),
            success: f.get(3) == Some("1"),
        })
    }
}

impl FromCsv for ProxyEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        ProxyEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

impl ToCsv for LogEvent {
    fn to_csv(&self) -> String {
        let (tag, body) = match self {
            LogEvent::Device(e) => ("device", e.to_csv()),
            LogEvent::File(e) => ("file", e.to_csv()),
            LogEvent::Http(e) => ("http", e.to_csv()),
            LogEvent::Email(e) => ("email", e.to_csv()),
            LogEvent::Logon(e) => ("logon", e.to_csv()),
            LogEvent::Windows(e) => ("windows", e.to_csv()),
            LogEvent::Proxy(e) => ("proxy", e.to_csv()),
        };
        format!("{tag},{body}")
    }
}

impl FromCsvFields for LogEvent {
    fn from_fields(f: &Fields<'_>) -> Result<Self, ParseCsvError> {
        let tag = f
            .get(0)
            .ok_or_else(|| ParseCsvError::new("missing category tag"))?;
        let body = f.tail(1);
        Ok(match tag {
            "device" => LogEvent::Device(DeviceEvent::from_fields(&body)?),
            "file" => LogEvent::File(FileEvent::from_fields(&body)?),
            "http" => LogEvent::Http(HttpEvent::from_fields(&body)?),
            "email" => LogEvent::Email(EmailEvent::from_fields(&body)?),
            "logon" => LogEvent::Logon(LogonEvent::from_fields(&body)?),
            "windows" => LogEvent::Windows(WindowsEvent::from_fields(&body)?),
            "proxy" => LogEvent::Proxy(ProxyEvent::from_fields(&body)?),
            other => return Err(ParseCsvError::new(format!("unknown category: {other}"))),
        })
    }
}

impl FromCsv for LogEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        LogEvent::from_fields(&RecordBuf::new().parse(line)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Date;

    fn ts() -> Timestamp {
        Date::from_ymd(2010, 7, 9).at(13, 5, 59)
    }

    #[test]
    fn record_quoting_roundtrip() {
        let fields = ["plain", "with,comma", "with\"quote", "with\nnewline", ""];
        let line = write_record(&fields);
        let parsed = parse_record(&line).unwrap();
        assert_eq!(parsed, fields);
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_record("\"oops").is_err());
    }

    #[test]
    fn device_roundtrip() {
        let e = DeviceEvent {
            ts: ts(),
            user: UserId(3),
            host: HostId(8),
            activity: DeviceActivity::Connect,
        };
        assert_eq!(DeviceEvent::from_csv(&e.to_csv()).unwrap(), e);
    }

    #[test]
    fn file_roundtrip() {
        let e = FileEvent {
            ts: ts(),
            user: UserId(3),
            host: HostId(8),
            file: FileId(123),
            activity: FileActivity::Copy,
            from: Location::Remote,
            to: Location::Local,
        };
        assert_eq!(FileEvent::from_csv(&e.to_csv()).unwrap(), e);
    }

    #[test]
    fn http_roundtrip() {
        let e = HttpEvent {
            ts: ts(),
            user: UserId(1),
            domain: DomainId(55),
            activity: HttpActivity::Upload,
            filetype: FileType::Doc,
            success: true,
        };
        assert_eq!(HttpEvent::from_csv(&e.to_csv()).unwrap(), e);
    }

    #[test]
    fn all_categories_roundtrip_via_logevent() {
        let events = vec![
            LogEvent::Device(DeviceEvent {
                ts: ts(),
                user: UserId(1),
                host: HostId(1),
                activity: DeviceActivity::Disconnect,
            }),
            LogEvent::File(FileEvent {
                ts: ts(),
                user: UserId(2),
                host: HostId(1),
                file: FileId(9),
                activity: FileActivity::Open,
                from: Location::Local,
                to: Location::Local,
            }),
            LogEvent::Http(HttpEvent {
                ts: ts(),
                user: UserId(3),
                domain: DomainId(4),
                activity: HttpActivity::Visit,
                filetype: FileType::Other,
                success: true,
            }),
            LogEvent::Email(EmailEvent {
                ts: ts(),
                user: UserId(4),
                recipients: 2,
                size: 1024,
                attachment: false,
            }),
            LogEvent::Logon(LogonEvent {
                ts: ts(),
                user: UserId(5),
                host: HostId(3),
                activity: LogonActivity::Logon,
                success: false,
            }),
            LogEvent::Windows(WindowsEvent {
                ts: ts(),
                user: UserId(6),
                channel: WinChannel::Sysmon,
                event_id: 11,
                object: 0xdead_beef,
            }),
            LogEvent::Proxy(ProxyEvent {
                ts: ts(),
                user: UserId(7),
                domain: DomainId(2),
                success: false,
            }),
        ];
        for e in events {
            let line = e.to_csv();
            let back = LogEvent::from_csv(&line).unwrap();
            assert_eq!(back, e, "line: {line}");
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(LogEvent::from_csv("nonsense,1,2,3").is_err());
        assert!(DeviceEvent::from_csv("2010-07-09 13:05:59,3,8,Explode").is_err());
        assert!(DeviceEvent::from_csv("2010-07-09,3,8,Connect").is_err());
        assert!(HttpEvent::from_csv("2010-07-09 25:00:00,1,2,Visit,other,1").is_err());
    }

    /// The pre-zero-copy char-by-char parser, kept verbatim as the
    /// differential reference for [`RecordBuf::parse`].
    pub(super) fn parse_record_reference(line: &str) -> Result<Vec<String>, ParseCsvError> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = line.chars().peekable();
        let mut in_quotes = false;
        loop {
            match chars.next() {
                None => {
                    if in_quotes {
                        return Err(ParseCsvError::new("unterminated quoted field"));
                    }
                    fields.push(cur);
                    return Ok(fields);
                }
                Some('"') if in_quotes => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                Some('"') if cur.is_empty() && !in_quotes => in_quotes = true,
                Some(',') if !in_quotes => {
                    fields.push(std::mem::take(&mut cur));
                }
                Some(ch) => cur.push(ch),
            }
        }
    }

    #[test]
    fn zero_copy_matches_reference_on_quirky_inputs() {
        // Historical lenient-grammar corners: stray quotes mid-field, literal
        // tails after a close quote, escapes, empty fields.
        let cases = [
            "",
            ",",
            ",,",
            "a,b,c",
            "\"\"",
            "\"\"\"\"",
            "\"a\"\"b\"",
            "\"a\"x",
            "\"\"x\"",
            "a\"b",
            "x,\"y,z\",w",
            "\"a\",,\"\"",
            "\"tail\"stuff,next",
            "\"multi\nline\",2",
        ];
        for case in cases {
            let reference = parse_record_reference(case).expect(case);
            assert_eq!(
                parse_record(case).expect(case),
                reference,
                "input: {case:?}"
            );
        }
        for bad in ["\"oops", "a,\"", "\"\"\"", "x,\"y"] {
            assert!(
                parse_record_reference(bad).is_err(),
                "reference accepts {bad:?}"
            );
            assert!(parse_record(bad).is_err(), "zero-copy accepts {bad:?}");
        }
    }

    #[test]
    fn record_buf_borrows_unescaped_fields() {
        let line = "plain,\"quoted\",\"es\"\"caped\"";
        let mut buf = RecordBuf::new();
        let f = buf.parse(line).unwrap();
        // Borrowed fields point back into the input line; only the escaped
        // one is materialized in scratch.
        let plain = f.get(0).unwrap();
        let quoted = f.get(1).unwrap();
        let line_range = line.as_ptr() as usize..line.as_ptr() as usize + line.len();
        assert!(line_range.contains(&(plain.as_ptr() as usize)));
        assert!(line_range.contains(&(quoted.as_ptr() as usize)));
        assert_eq!(f.get(2), Some("es\"caped"));
        assert!(!line_range.contains(&(f.get(2).unwrap().as_ptr() as usize)));
    }

    #[test]
    fn chunker_splits_on_record_boundaries_only() {
        let data = b"a,b\n\"x\ny\",2\nlast";
        // The embedded newline inside quotes is not a boundary.
        assert_eq!(complete_record_prefix(data), Some(12));
        let recs: Vec<&[u8]> = record_slices(data).collect();
        assert_eq!(recs, [&b"a,b"[..], &b"\"x\ny\",2"[..], &b"last"[..]]);
    }

    #[test]
    fn chunker_strips_crlf_and_handles_no_complete_record() {
        let recs: Vec<&[u8]> = record_slices(b"a,b\r\nc\r\n").collect();
        assert_eq!(recs, [&b"a,b"[..], &b"c"[..]]);
        assert_eq!(complete_record_prefix(b"no newline here"), None);
        assert_eq!(complete_record_prefix(b"\"open quote\nstill open"), None);
        assert!(record_slices(b"").next().is_none());
    }

    #[test]
    fn parse_event_matches_from_csv() {
        let mut buf = RecordBuf::new();
        let line = "device,2010-07-09 13:05:59,3,8,Connect";
        assert_eq!(
            parse_event(line, &mut buf).unwrap(),
            LogEvent::from_csv(line).unwrap()
        );
        assert!(parse_event("garbage", &mut buf).is_err());
        // Buffer reuse across records keeps working.
        let line2 = "proxy,2010-07-09 13:05:59,7,2,0";
        assert_eq!(
            parse_event(line2, &mut buf).unwrap(),
            LogEvent::from_csv(line2).unwrap()
        );
    }

    #[test]
    fn fast_ts_and_u32_match_flexible_semantics() {
        // Non-canonical widths and signs still parse via the fallback.
        let e = DeviceEvent::from_csv("2010-7-9 13:5:59,+3,8,Connect").unwrap();
        assert_eq!(e.ts, Date::from_ymd(2010, 7, 9).at(13, 5, 59));
        assert_eq!(e.user.0, 3);
        // Canonical-looking but invalid values go through the fallback's
        // validation instead of panicking.
        assert!(DeviceEvent::from_csv("2010-02-30 10:00:00,3,8,Connect").is_err());
        assert!(DeviceEvent::from_csv("2010-07-09 24:00:00,3,8,Connect").is_err());
        assert!(DeviceEvent::from_csv("2010-07-09 13:05:59,4294967296,8,Connect").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Arbitrary field content (commas, quotes, newlines) survives one
        /// write/parse cycle.
        #[test]
        fn record_roundtrip(fields in prop::collection::vec(".{0,24}", 1..8)) {
            let refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
            let line = write_record(&refs);
            let parsed = parse_record(&line).unwrap();
            prop_assert_eq!(parsed, fields);
        }

        /// The zero-copy parser agrees with the historical char-by-char
        /// parser on arbitrary input — same fields or same rejection —
        /// including inputs that are not valid records at all.
        #[test]
        fn zero_copy_differential(line in "[a-c,\"\\n ]{0,48}") {
            let reference = super::tests::parse_record_reference(&line);
            let mut buf = RecordBuf::new();
            match (buf.parse(&line), reference) {
                (Ok(f), Ok(r)) => {
                    let got: Vec<String> = f.iter().map(str::to_owned).collect();
                    prop_assert_eq!(got, r);
                }
                (Err(_), Err(_)) => {}
                (got, reference) => prop_assert!(
                    false,
                    "diverged on {:?}: new {:?}, reference {:?}", line, got.is_ok(), reference
                ),
            }
        }

        /// Quoted/escaped/embedded-newline records survive the full
        /// write → chunk → slice → parse cycle, and truncating the final
        /// newline never drops the last record.
        #[test]
        fn chunked_records_roundtrip(
            // No '\r': a trailing CR is stripped by line splitting, exactly
            // as the old `str::lines`-based reader did.
            records in prop::collection::vec(
                prop::collection::vec("[a-z ,\"\\n]{0,12}", 1..5),
                1..6,
            ),
            trailing_newline in proptest::bool::ANY,
        ) {
            let mut blob = String::new();
            for rec in &records {
                let refs: Vec<&str> = rec.iter().map(|s| s.as_str()).collect();
                blob.push_str(&write_record(&refs));
                blob.push('\n');
            }
            if !trailing_newline {
                blob.pop();
            }
            let mut buf = RecordBuf::new();
            let mut parsed = Vec::new();
            for slice in record_slices(blob.as_bytes()) {
                let line = std::str::from_utf8(slice).unwrap();
                parsed.push(buf.parse(line).unwrap().iter().map(str::to_owned).collect::<Vec<_>>());
            }
            // Records whose serialization is empty ("" written with no
            // trailing newline) vanish as blank lines, like `str::lines`.
            let expect: Vec<Vec<String>> = records
                .iter()
                .filter(|r| !(r.len() == 1 && r[0].is_empty()))
                .cloned()
                .collect();
            let parsed: Vec<Vec<String>> = parsed
                .into_iter()
                .filter(|r| !(r.len() == 1 && r[0].is_empty()))
                .collect();
            prop_assert_eq!(parsed, expect);
        }

        /// `complete_record_prefix` always lands on a boundary the record
        /// iterator agrees with: slicing the prefix and the remainder
        /// separately yields the same records as slicing the whole blob.
        #[test]
        fn chunk_split_is_transparent(blob in "[a-b,\"\\n]{0,64}") {
            let bytes = blob.as_bytes();
            if let Some(cut) = complete_record_prefix(bytes) {
                let whole: Vec<&[u8]> = record_slices(bytes).collect();
                let mut split: Vec<&[u8]> = record_slices(&bytes[..cut]).collect();
                split.extend(record_slices(&bytes[cut..]));
                // An empty remainder contributes nothing; a prefix ending in
                // '\n' never yields a trailing empty record.
                prop_assert_eq!(whole, split);
            }
        }
    }
}
