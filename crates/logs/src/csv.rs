//! Minimal CSV codec for CERT-style log files.
//!
//! The CERT dataset ships as CSV files (`device.csv`, `file.csv`, …). This
//! module provides a small, dependency-free reader/writer pair with RFC-4180
//! quoting, plus [`ToCsv`]/[`FromCsv`] implementations for every event type so
//! synthesized datasets can be exported and re-imported losslessly.

use crate::event::*;
use crate::ids::{DomainId, FileId, HostId, UserId};
use crate::time::{Date, Timestamp};
use std::fmt;

/// Error produced when a CSV line cannot be decoded into an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// Human-readable cause.
    pub reason: String,
}

impl ParseCsvError {
    fn new(reason: impl Into<String>) -> Self {
        ParseCsvError { reason: reason.into() }
    }
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid csv record: {}", self.reason)
    }
}

impl std::error::Error for ParseCsvError {}

/// Writes one CSV record (no trailing newline), quoting fields that need it.
///
/// # Examples
///
/// ```
/// use acobe_logs::csv::write_record;
/// assert_eq!(write_record(&["a", "b,c", "d\"e"]), "a,\"b,c\",\"d\"\"e\"");
/// ```
pub fn write_record(fields: &[&str]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            out.push('"');
            for ch in f.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out
}

/// Splits one CSV record into fields, honoring RFC-4180 quoting.
///
/// # Errors
///
/// Returns an error for an unterminated quoted field.
pub fn parse_record(line: &str) -> Result<Vec<String>, ParseCsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(ParseCsvError::new("unterminated quoted field"));
                }
                fields.push(cur);
                return Ok(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cur.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            Some(ch) => cur.push(ch),
        }
    }
}

fn fmt_ts(ts: Timestamp) -> String {
    ts.to_string()
}

fn parse_ts(s: &str) -> Result<Timestamp, ParseCsvError> {
    let (date_part, time_part) = s
        .split_once(' ')
        .ok_or_else(|| ParseCsvError::new(format!("bad timestamp: {s}")))?;
    let date = Date::parse(date_part)
        .map_err(|_| ParseCsvError::new(format!("bad date: {date_part}")))?;
    let mut it = time_part.splitn(3, ':');
    let h: u32 = it
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ParseCsvError::new("bad hour"))?;
    let m: u32 = it
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ParseCsvError::new("bad minute"))?;
    let sec: u32 = it
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ParseCsvError::new("bad second"))?;
    if h >= 24 || m >= 60 || sec >= 60 {
        return Err(ParseCsvError::new(format!("bad wall clock: {time_part}")));
    }
    Ok(date.at(h, m, sec))
}

fn parse_u32(s: &str, what: &str) -> Result<u32, ParseCsvError> {
    s.parse()
        .map_err(|_| ParseCsvError::new(format!("bad {what}: {s}")))
}

/// Types that can be encoded as one CSV record.
pub trait ToCsv {
    /// Encodes to a CSV line without a trailing newline.
    fn to_csv(&self) -> String;
}

/// Types that can be decoded from one CSV record.
pub trait FromCsv: Sized {
    /// Decodes from a CSV line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCsvError`] when the record is malformed.
    fn from_csv(line: &str) -> Result<Self, ParseCsvError>;
}

impl ToCsv for DeviceEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            DeviceActivity::Connect => "Connect",
            DeviceActivity::Disconnect => "Disconnect",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.host.0.to_string(),
            act,
        ])
    }
}

impl FromCsv for DeviceEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let f = parse_record(line)?;
        if f.len() != 4 {
            return Err(ParseCsvError::new("device record needs 4 fields"));
        }
        let activity = match f[3].as_str() {
            "Connect" => DeviceActivity::Connect,
            "Disconnect" => DeviceActivity::Disconnect,
            other => return Err(ParseCsvError::new(format!("bad device activity: {other}"))),
        };
        Ok(DeviceEvent {
            ts: parse_ts(&f[0])?,
            user: UserId(parse_u32(&f[1], "user")?),
            host: HostId(parse_u32(&f[2], "host")?),
            activity,
        })
    }
}

fn loc_str(l: Location) -> &'static str {
    match l {
        Location::Local => "Local",
        Location::Remote => "Remote",
    }
}

fn parse_loc(s: &str) -> Result<Location, ParseCsvError> {
    match s {
        "Local" => Ok(Location::Local),
        "Remote" => Ok(Location::Remote),
        other => Err(ParseCsvError::new(format!("bad location: {other}"))),
    }
}

impl ToCsv for FileEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            FileActivity::Open => "Open",
            FileActivity::Write => "Write",
            FileActivity::Copy => "Copy",
            FileActivity::Delete => "Delete",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.host.0.to_string(),
            &self.file.0.to_string(),
            act,
            loc_str(self.from),
            loc_str(self.to),
        ])
    }
}

impl FromCsv for FileEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let f = parse_record(line)?;
        if f.len() != 7 {
            return Err(ParseCsvError::new("file record needs 7 fields"));
        }
        let activity = match f[4].as_str() {
            "Open" => FileActivity::Open,
            "Write" => FileActivity::Write,
            "Copy" => FileActivity::Copy,
            "Delete" => FileActivity::Delete,
            other => return Err(ParseCsvError::new(format!("bad file activity: {other}"))),
        };
        Ok(FileEvent {
            ts: parse_ts(&f[0])?,
            user: UserId(parse_u32(&f[1], "user")?),
            host: HostId(parse_u32(&f[2], "host")?),
            file: FileId(parse_u32(&f[3], "file")?),
            activity,
            from: parse_loc(&f[5])?,
            to: parse_loc(&f[6])?,
        })
    }
}

fn filetype_str(ft: FileType) -> &'static str {
    match ft {
        FileType::Doc => "doc",
        FileType::Exe => "exe",
        FileType::Jpg => "jpg",
        FileType::Pdf => "pdf",
        FileType::Txt => "txt",
        FileType::Zip => "zip",
        FileType::Other => "other",
    }
}

fn parse_filetype(s: &str) -> Result<FileType, ParseCsvError> {
    Ok(match s {
        "doc" => FileType::Doc,
        "exe" => FileType::Exe,
        "jpg" => FileType::Jpg,
        "pdf" => FileType::Pdf,
        "txt" => FileType::Txt,
        "zip" => FileType::Zip,
        "other" => FileType::Other,
        other => return Err(ParseCsvError::new(format!("bad filetype: {other}"))),
    })
}

impl ToCsv for HttpEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            HttpActivity::Visit => "Visit",
            HttpActivity::Download => "Download",
            HttpActivity::Upload => "Upload",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.domain.0.to_string(),
            act,
            filetype_str(self.filetype),
            if self.success { "1" } else { "0" },
        ])
    }
}

impl FromCsv for HttpEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let f = parse_record(line)?;
        if f.len() != 6 {
            return Err(ParseCsvError::new("http record needs 6 fields"));
        }
        let activity = match f[3].as_str() {
            "Visit" => HttpActivity::Visit,
            "Download" => HttpActivity::Download,
            "Upload" => HttpActivity::Upload,
            other => return Err(ParseCsvError::new(format!("bad http activity: {other}"))),
        };
        Ok(HttpEvent {
            ts: parse_ts(&f[0])?,
            user: UserId(parse_u32(&f[1], "user")?),
            domain: DomainId(parse_u32(&f[2], "domain")?),
            activity,
            filetype: parse_filetype(&f[4])?,
            success: f[5] == "1",
        })
    }
}

impl ToCsv for EmailEvent {
    fn to_csv(&self) -> String {
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.recipients.to_string(),
            &self.size.to_string(),
            if self.attachment { "1" } else { "0" },
        ])
    }
}

impl FromCsv for EmailEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let f = parse_record(line)?;
        if f.len() != 5 {
            return Err(ParseCsvError::new("email record needs 5 fields"));
        }
        Ok(EmailEvent {
            ts: parse_ts(&f[0])?,
            user: UserId(parse_u32(&f[1], "user")?),
            recipients: parse_u32(&f[2], "recipients")?,
            size: parse_u32(&f[3], "size")?,
            attachment: f[4] == "1",
        })
    }
}

impl ToCsv for LogonEvent {
    fn to_csv(&self) -> String {
        let act = match self.activity {
            LogonActivity::Logon => "Logon",
            LogonActivity::Logoff => "Logoff",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.host.0.to_string(),
            act,
            if self.success { "1" } else { "0" },
        ])
    }
}

impl FromCsv for LogonEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let f = parse_record(line)?;
        if f.len() != 5 {
            return Err(ParseCsvError::new("logon record needs 5 fields"));
        }
        let activity = match f[3].as_str() {
            "Logon" => LogonActivity::Logon,
            "Logoff" => LogonActivity::Logoff,
            other => return Err(ParseCsvError::new(format!("bad logon activity: {other}"))),
        };
        Ok(LogonEvent {
            ts: parse_ts(&f[0])?,
            user: UserId(parse_u32(&f[1], "user")?),
            host: HostId(parse_u32(&f[2], "host")?),
            activity,
            success: f[4] == "1",
        })
    }
}

impl ToCsv for WindowsEvent {
    fn to_csv(&self) -> String {
        let chan = match self.channel {
            WinChannel::Security => "Security",
            WinChannel::Sysmon => "Sysmon",
            WinChannel::PowerShell => "PowerShell",
            WinChannel::System => "System",
        };
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            chan,
            &self.event_id.to_string(),
            &self.object.to_string(),
        ])
    }
}

impl FromCsv for WindowsEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let f = parse_record(line)?;
        if f.len() != 5 {
            return Err(ParseCsvError::new("windows record needs 5 fields"));
        }
        let channel = match f[2].as_str() {
            "Security" => WinChannel::Security,
            "Sysmon" => WinChannel::Sysmon,
            "PowerShell" => WinChannel::PowerShell,
            "System" => WinChannel::System,
            other => return Err(ParseCsvError::new(format!("bad channel: {other}"))),
        };
        Ok(WindowsEvent {
            ts: parse_ts(&f[0])?,
            user: UserId(parse_u32(&f[1], "user")?),
            channel,
            event_id: f[3]
                .parse()
                .map_err(|_| ParseCsvError::new(format!("bad event id: {}", f[3])))?,
            object: f[4]
                .parse()
                .map_err(|_| ParseCsvError::new(format!("bad object: {}", f[4])))?,
        })
    }
}

impl ToCsv for ProxyEvent {
    fn to_csv(&self) -> String {
        write_record(&[
            &fmt_ts(self.ts),
            &self.user.0.to_string(),
            &self.domain.0.to_string(),
            if self.success { "1" } else { "0" },
        ])
    }
}

impl FromCsv for ProxyEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let f = parse_record(line)?;
        if f.len() != 4 {
            return Err(ParseCsvError::new("proxy record needs 4 fields"));
        }
        Ok(ProxyEvent {
            ts: parse_ts(&f[0])?,
            user: UserId(parse_u32(&f[1], "user")?),
            domain: DomainId(parse_u32(&f[2], "domain")?),
            success: f[3] == "1",
        })
    }
}

impl ToCsv for LogEvent {
    fn to_csv(&self) -> String {
        let (tag, body) = match self {
            LogEvent::Device(e) => ("device", e.to_csv()),
            LogEvent::File(e) => ("file", e.to_csv()),
            LogEvent::Http(e) => ("http", e.to_csv()),
            LogEvent::Email(e) => ("email", e.to_csv()),
            LogEvent::Logon(e) => ("logon", e.to_csv()),
            LogEvent::Windows(e) => ("windows", e.to_csv()),
            LogEvent::Proxy(e) => ("proxy", e.to_csv()),
        };
        format!("{tag},{body}")
    }
}

impl FromCsv for LogEvent {
    fn from_csv(line: &str) -> Result<Self, ParseCsvError> {
        let (tag, rest) = line
            .split_once(',')
            .ok_or_else(|| ParseCsvError::new("missing category tag"))?;
        Ok(match tag {
            "device" => LogEvent::Device(DeviceEvent::from_csv(rest)?),
            "file" => LogEvent::File(FileEvent::from_csv(rest)?),
            "http" => LogEvent::Http(HttpEvent::from_csv(rest)?),
            "email" => LogEvent::Email(EmailEvent::from_csv(rest)?),
            "logon" => LogEvent::Logon(LogonEvent::from_csv(rest)?),
            "windows" => LogEvent::Windows(WindowsEvent::from_csv(rest)?),
            "proxy" => LogEvent::Proxy(ProxyEvent::from_csv(rest)?),
            other => return Err(ParseCsvError::new(format!("unknown category: {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Date;

    fn ts() -> Timestamp {
        Date::from_ymd(2010, 7, 9).at(13, 5, 59)
    }

    #[test]
    fn record_quoting_roundtrip() {
        let fields = ["plain", "with,comma", "with\"quote", "with\nnewline", ""];
        let line = write_record(&fields);
        let parsed = parse_record(&line).unwrap();
        assert_eq!(parsed, fields);
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_record("\"oops").is_err());
    }

    #[test]
    fn device_roundtrip() {
        let e = DeviceEvent {
            ts: ts(),
            user: UserId(3),
            host: HostId(8),
            activity: DeviceActivity::Connect,
        };
        assert_eq!(DeviceEvent::from_csv(&e.to_csv()).unwrap(), e);
    }

    #[test]
    fn file_roundtrip() {
        let e = FileEvent {
            ts: ts(),
            user: UserId(3),
            host: HostId(8),
            file: FileId(123),
            activity: FileActivity::Copy,
            from: Location::Remote,
            to: Location::Local,
        };
        assert_eq!(FileEvent::from_csv(&e.to_csv()).unwrap(), e);
    }

    #[test]
    fn http_roundtrip() {
        let e = HttpEvent {
            ts: ts(),
            user: UserId(1),
            domain: DomainId(55),
            activity: HttpActivity::Upload,
            filetype: FileType::Doc,
            success: true,
        };
        assert_eq!(HttpEvent::from_csv(&e.to_csv()).unwrap(), e);
    }

    #[test]
    fn all_categories_roundtrip_via_logevent() {
        let events = vec![
            LogEvent::Device(DeviceEvent {
                ts: ts(),
                user: UserId(1),
                host: HostId(1),
                activity: DeviceActivity::Disconnect,
            }),
            LogEvent::File(FileEvent {
                ts: ts(),
                user: UserId(2),
                host: HostId(1),
                file: FileId(9),
                activity: FileActivity::Open,
                from: Location::Local,
                to: Location::Local,
            }),
            LogEvent::Http(HttpEvent {
                ts: ts(),
                user: UserId(3),
                domain: DomainId(4),
                activity: HttpActivity::Visit,
                filetype: FileType::Other,
                success: true,
            }),
            LogEvent::Email(EmailEvent {
                ts: ts(),
                user: UserId(4),
                recipients: 2,
                size: 1024,
                attachment: false,
            }),
            LogEvent::Logon(LogonEvent {
                ts: ts(),
                user: UserId(5),
                host: HostId(3),
                activity: LogonActivity::Logon,
                success: false,
            }),
            LogEvent::Windows(WindowsEvent {
                ts: ts(),
                user: UserId(6),
                channel: WinChannel::Sysmon,
                event_id: 11,
                object: 0xdead_beef,
            }),
            LogEvent::Proxy(ProxyEvent {
                ts: ts(),
                user: UserId(7),
                domain: DomainId(2),
                success: false,
            }),
        ];
        for e in events {
            let line = e.to_csv();
            let back = LogEvent::from_csv(&line).unwrap();
            assert_eq!(back, e, "line: {line}");
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(LogEvent::from_csv("nonsense,1,2,3").is_err());
        assert!(DeviceEvent::from_csv("2010-07-09 13:05:59,3,8,Explode").is_err());
        assert!(DeviceEvent::from_csv("2010-07-09,3,8,Connect").is_err());
        assert!(HttpEvent::from_csv("2010-07-09 25:00:00,1,2,Visit,other,1").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Arbitrary field content (commas, quotes, newlines) survives one
        /// write/parse cycle.
        #[test]
        fn record_roundtrip(fields in prop::collection::vec(".{0,24}", 1..8)) {
            let refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
            let line = write_record(&refs);
            let parsed = parse_record(&line).unwrap();
            prop_assert_eq!(parsed, fields);
        }
    }
}
