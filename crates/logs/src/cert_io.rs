//! Readers for the *real* CERT Insider Threat Test Dataset file formats.
//!
//! The r6.x releases ship per-category CSV files — `device.csv`, `logon.csv`,
//! `http.csv`, `file.csv`, `email.csv` — with `MM/DD/YYYY HH:MM:SS`
//! timestamps, `{GUID}` record ids, `DOMAIN/USER` account names and
//! free-text objects (URLs, file paths). This module parses those formats
//! into [`LogEvent`]s, interning every external identifier, so the pipeline
//! can run on the actual dataset as well as on synthesized logs.
//!
//! Only the columns the paper's features consume are interpreted; unknown
//! trailing columns are ignored, making the readers robust across the r4-r6
//! column variations.

use crate::csv::{Fields, ParseCsvError, RecordBuf};
use crate::event::*;
use crate::ids::{DomainId, FileId, HostId, Interner, UserId};
use crate::store::LogStore;
use crate::time::{Date, Timestamp};

/// Interners shared across all CERT files of one dataset.
#[derive(Debug, Clone, Default)]
pub struct CertInterners {
    /// `DOMAIN/USER` account names.
    pub users: Interner,
    /// PC names.
    pub pcs: Interner,
    /// Web domains (the host part of URLs).
    pub domains: Interner,
    /// File paths.
    pub files: Interner,
}

/// A parsed dataset: the merged event store plus the identifier tables.
#[derive(Debug, Default)]
pub struct CertDatasetFiles {
    /// All parsed events (finalize before querying).
    pub store: LogStore,
    /// Identifier tables.
    pub interners: CertInterners,
    /// Lines skipped because a record was malformed (kept for reporting).
    pub skipped: usize,
}

impl CertDatasetFiles {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a `device.csv` body (`id,date,user,pc,activity`).
    ///
    /// # Errors
    ///
    /// Returns an error if the text has a malformed header line; individual
    /// bad records are counted in `skipped` instead.
    pub fn read_device(&mut self, text: &str) -> Result<usize, ParseCsvError> {
        self.read_lines(text, |this, f| {
            let ts = parse_cert_ts(f.get(1)?)?;
            let user = UserId(this.interners.users.intern(f.get(2)?));
            let host = HostId(this.interners.pcs.intern(f.get(3)?));
            let activity = match f.get(4)?.trim() {
                "Connect" => DeviceActivity::Connect,
                "Disconnect" => DeviceActivity::Disconnect,
                _ => return None,
            };
            Some(LogEvent::Device(DeviceEvent {
                ts,
                user,
                host,
                activity,
            }))
        })
    }

    /// Parses a `logon.csv` body (`id,date,user,pc,activity`).
    ///
    /// # Errors
    ///
    /// See [`CertDatasetFiles::read_device`].
    pub fn read_logon(&mut self, text: &str) -> Result<usize, ParseCsvError> {
        self.read_lines(text, |this, f| {
            let ts = parse_cert_ts(f.get(1)?)?;
            let user = UserId(this.interners.users.intern(f.get(2)?));
            let host = HostId(this.interners.pcs.intern(f.get(3)?));
            let activity = match f.get(4)?.trim() {
                "Logon" => LogonActivity::Logon,
                "Logoff" => LogonActivity::Logoff,
                _ => return None,
            };
            Some(LogEvent::Logon(LogonEvent {
                ts,
                user,
                host,
                activity,
                success: true,
            }))
        })
    }

    /// Parses an `http.csv` body (`id,date,user,pc,url[,activity[,...]]`).
    ///
    /// Releases before r6.2 have no activity column; those records are
    /// treated as visits. The URL's file extension decides the
    /// [`FileType`] for uploads/downloads.
    ///
    /// # Errors
    ///
    /// See [`CertDatasetFiles::read_device`].
    pub fn read_http(&mut self, text: &str) -> Result<usize, ParseCsvError> {
        self.read_lines(text, |this, f| {
            let ts = parse_cert_ts(f.get(1)?)?;
            let user = UserId(this.interners.users.intern(f.get(2)?));
            let url = f.get(4)?;
            let domain = DomainId(this.interners.domains.intern(url_domain(url)));
            let activity = match f.get(5).map(|s| s.trim()) {
                Some("WWW Upload") => HttpActivity::Upload,
                Some("WWW Download") => HttpActivity::Download,
                _ => HttpActivity::Visit,
            };
            let filetype = filetype_from_url(url);
            Some(LogEvent::Http(HttpEvent {
                ts,
                user,
                domain,
                activity,
                filetype,
                success: true,
            }))
        })
    }

    /// Parses a `file.csv` body
    /// (`id,date,user,pc,filename[,activity[,to_removable,from_removable,...]]`).
    ///
    /// # Errors
    ///
    /// See [`CertDatasetFiles::read_device`].
    pub fn read_file(&mut self, text: &str) -> Result<usize, ParseCsvError> {
        self.read_lines(text, |this, f| {
            let ts = parse_cert_ts(f.get(1)?)?;
            let user = UserId(this.interners.users.intern(f.get(2)?));
            let host = HostId(this.interners.pcs.intern(f.get(3)?));
            let file = FileId(this.interners.files.intern(f.get(4)?));
            let activity = match f.get(5).map(|s| s.trim()) {
                Some("File Write") => FileActivity::Write,
                Some("File Copy") => FileActivity::Copy,
                Some("File Delete") => FileActivity::Delete,
                _ => FileActivity::Open, // r4/r5 have no verb column
            };
            let to_removable = matches!(f.get(6).map(str::trim), Some("True") | Some("true"));
            let from_removable = matches!(f.get(7).map(str::trim), Some("True") | Some("true"));
            let (from, to) = match (from_removable, to_removable) {
                (true, _) => (Location::Remote, Location::Local),
                (_, true) => (Location::Local, Location::Remote),
                _ => (Location::Local, Location::Local),
            };
            Some(LogEvent::File(FileEvent {
                ts,
                user,
                host,
                file,
                activity,
                from,
                to,
            }))
        })
    }

    /// Parses an `email.csv` body
    /// (`id,date,user,pc,to,cc,bcc,from,size,attachments,...`).
    ///
    /// # Errors
    ///
    /// See [`CertDatasetFiles::read_device`].
    pub fn read_email(&mut self, text: &str) -> Result<usize, ParseCsvError> {
        self.read_lines(text, |this, f| {
            let ts = parse_cert_ts(f.get(1)?)?;
            let user = UserId(this.interners.users.intern(f.get(2)?));
            let recipients = f
                .get(4)
                .map(|to| to.split(';').filter(|r| !r.trim().is_empty()).count() as u32)
                .unwrap_or(0);
            let size: u32 = f.get(8).and_then(|s| s.trim().parse().ok()).unwrap_or(0);
            let attachment = f
                .get(9)
                .and_then(|s| s.trim().parse::<u32>().ok())
                .map(|n| n > 0)
                .unwrap_or(false);
            Some(LogEvent::Email(EmailEvent {
                ts,
                user,
                recipients,
                size,
                attachment,
            }))
        })
    }

    /// Finalizes the merged store (sorts by timestamp) and returns the parts.
    pub fn finish(mut self) -> (LogStore, CertInterners, usize) {
        self.store.finalize();
        (self.store, self.interners, self.skipped)
    }

    fn read_lines<F>(&mut self, text: &str, mut convert: F) -> Result<usize, ParseCsvError>
    where
        F: FnMut(&mut Self, &Fields<'_>) -> Option<LogEvent>,
    {
        let mut added = 0usize;
        // One reusable field buffer for the whole file: fields are borrowed
        // slices of each line, so the per-record `Vec<String>` the old
        // reader allocated is gone.
        let mut buf = RecordBuf::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            // Skip a header row (first line not starting with a {GUID}).
            if i == 0 && !line.starts_with('{') {
                continue;
            }
            let fields = buf.parse(line)?;
            match convert(self, &fields) {
                Some(event) => {
                    self.store.push(event);
                    added += 1;
                }
                None => self.skipped += 1,
            }
        }
        Ok(added)
    }
}

/// Parses the CERT `MM/DD/YYYY HH:MM:SS` timestamp format.
pub fn parse_cert_ts(s: &str) -> Option<Timestamp> {
    let (date_part, time_part) = s.trim().split_once(' ')?;
    let mut d = date_part.splitn(3, '/');
    let month: u32 = d.next()?.parse().ok()?;
    let day: u32 = d.next()?.parse().ok()?;
    let year: i32 = d.next()?.parse().ok()?;
    if !(1..=12).contains(&month) || day == 0 {
        return None;
    }
    if day > crate::time::days_in_month(year, month) {
        return None;
    }
    let mut t = time_part.splitn(3, ':');
    let h: u32 = t.next()?.parse().ok()?;
    let m: u32 = t.next()?.parse().ok()?;
    let sec: u32 = t.next().unwrap_or("0").parse().ok()?;
    if h >= 24 || m >= 60 || sec >= 60 {
        return None;
    }
    Some(Date::from_ymd(year, month, day).at(h, m, sec))
}

/// Extracts the domain from a URL (`http://mail.aol.com/x/y` → `mail.aol.com`).
pub fn url_domain(url: &str) -> &str {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))
        .unwrap_or(url);
    rest.split('/').next().unwrap_or(rest)
}

/// Guesses the paper's upload [`FileType`] from a URL's extension.
pub fn filetype_from_url(url: &str) -> FileType {
    let lower = url.to_ascii_lowercase();
    for (ext, ft) in [
        (".doc", FileType::Doc),
        (".exe", FileType::Exe),
        (".jpg", FileType::Jpg),
        (".jpeg", FileType::Jpg),
        (".pdf", FileType::Pdf),
        (".txt", FileType::Txt),
        (".zip", FileType::Zip),
    ] {
        if lower.ends_with(ext) || lower.contains(&format!("{ext}?")) {
            return ft;
        }
    }
    FileType::Other
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cert_timestamp_format() {
        let ts = parse_cert_ts("01/02/2010 07:21:01").unwrap();
        assert_eq!(ts.date(), Date::from_ymd(2010, 1, 2));
        assert_eq!(ts.hour(), 7);
        assert_eq!(ts.minute(), 21);
        assert!(parse_cert_ts("13/02/2010 07:21:01").is_none());
        assert!(parse_cert_ts("02/30/2010 07:21:01").is_none());
        assert!(parse_cert_ts("garbage").is_none());
    }

    #[test]
    fn url_parsing() {
        assert_eq!(url_domain("http://mail.aol.com/inbox/view"), "mail.aol.com");
        assert_eq!(url_domain("https://wikileaks.org/upload"), "wikileaks.org");
        assert_eq!(url_domain("bare.example.net"), "bare.example.net");
        assert_eq!(filetype_from_url("http://x.com/resume.doc"), FileType::Doc);
        assert_eq!(filetype_from_url("http://x.com/a.zip"), FileType::Zip);
        assert_eq!(filetype_from_url("http://x.com/page"), FileType::Other);
    }

    #[test]
    fn device_file_roundtrip() {
        let text = "\
{A1B2}-id,date,user,pc,activity
{F9C2-1}  ,01/04/2010 08:01:00,DTAA/JPH1910,PC-1234,Connect
{F9C2-2},01/04/2010 09:30:00,DTAA/JPH1910,PC-1234,Disconnect
{F9C2-3},01/04/2010 10:00:00,DTAA/ACM2278,PC-9999,Connect";
        // First line is a header (does not start with '{')? It does start
        // with '{' here, so craft a proper header:
        let text = text.replace("{A1B2}-id", "id");
        let mut ds = CertDatasetFiles::new();
        let added = ds.read_device(&text).unwrap();
        assert_eq!(added, 3);
        let (store, interners, skipped) = ds.finish();
        assert_eq!(skipped, 0);
        assert_eq!(store.len(), 3);
        assert_eq!(interners.users.len(), 2);
        assert_eq!(interners.pcs.len(), 2);
        assert_eq!(store.events()[0].ts().date(), Date::from_ymd(2010, 1, 4));
    }

    #[test]
    fn http_with_and_without_activity_column() {
        let text = "\
id,date,user,pc,url,activity
{1},01/05/2010 10:00:00,DTAA/JPH1910,PC-1,http://jobsearch.example.com/resume.doc,WWW Upload
{2},01/05/2010 10:05:00,DTAA/JPH1910,PC-1,http://news.example.com/index.html";
        let mut ds = CertDatasetFiles::new();
        ds.read_http(text).unwrap();
        let (store, interners, _) = ds.finish();
        let events = store.events();
        assert_eq!(events.len(), 2);
        let LogEvent::Http(up) = &events[0] else {
            panic!("expected http")
        };
        assert_eq!(up.activity, HttpActivity::Upload);
        assert_eq!(up.filetype, FileType::Doc);
        assert_eq!(
            interners.domains.resolve(up.domain.0),
            Some("jobsearch.example.com")
        );
        let LogEvent::Http(visit) = &events[1] else {
            panic!("expected http")
        };
        assert_eq!(visit.activity, HttpActivity::Visit);
    }

    #[test]
    fn file_removable_media_directions() {
        let text = "\
id,date,user,pc,filename,activity,to_removable_media,from_removable_media
{1},01/05/2010 11:00:00,DTAA/U1,PC-1,C:\\docs\\a.doc,File Copy,True,False
{2},01/05/2010 11:01:00,DTAA/U1,PC-1,R:\\usb\\b.doc,File Open,False,True
{3},01/05/2010 11:02:00,DTAA/U1,PC-1,C:\\docs\\c.doc,File Write,False,False";
        let mut ds = CertDatasetFiles::new();
        ds.read_file(text).unwrap();
        let (store, _, _) = ds.finish();
        let LogEvent::File(copy) = &store.events()[0] else {
            panic!()
        };
        assert_eq!(copy.activity, FileActivity::Copy);
        assert_eq!(copy.to, Location::Remote);
        let LogEvent::File(open) = &store.events()[1] else {
            panic!()
        };
        assert_eq!(open.from, Location::Remote);
        let LogEvent::File(write) = &store.events()[2] else {
            panic!()
        };
        assert_eq!(write.to, Location::Local);
    }

    #[test]
    fn email_parsing() {
        let text = "\
id,date,user,pc,to,cc,bcc,from,size,attachments
{1},01/05/2010 12:00:00,DTAA/U1,PC-1,a@x.com;b@x.com,,,u1@dtaa.com,25000,2";
        let mut ds = CertDatasetFiles::new();
        ds.read_email(text).unwrap();
        let (store, _, _) = ds.finish();
        let LogEvent::Email(e) = &store.events()[0] else {
            panic!()
        };
        assert_eq!(e.recipients, 2);
        assert_eq!(e.size, 25_000);
        assert!(e.attachment);
    }

    #[test]
    fn malformed_records_are_skipped_not_fatal() {
        let text = "\
id,date,user,pc,activity
{1},01/05/2010 10:00:00,DTAA/U1,PC-1,Connect
{2},not a date,DTAA/U1,PC-1,Connect
{3},01/05/2010 11:00:00,DTAA/U1,PC-1,Explode";
        let mut ds = CertDatasetFiles::new();
        let added = ds.read_device(text).unwrap();
        assert_eq!(added, 1);
        let (_, _, skipped) = ds.finish();
        assert_eq!(skipped, 2);
    }

    #[test]
    fn merged_store_is_sorted_across_files() {
        let device = "id,date,user,pc,activity\n{1},01/06/2010 10:00:00,DTAA/U1,PC-1,Connect";
        let logon = "id,date,user,pc,activity\n{2},01/06/2010 08:00:00,DTAA/U1,PC-1,Logon";
        let mut ds = CertDatasetFiles::new();
        ds.read_device(device).unwrap();
        ds.read_logon(logon).unwrap();
        let (store, _, _) = ds.finish();
        assert_eq!(store.events()[0].category(), LogCategory::Logon);
        assert_eq!(store.events()[1].category(), LogCategory::Device);
    }
}
