//! Typed alerts and the process-wide alert board.
//!
//! This module holds the *data plane* of the alerting subsystem: the
//! [`Alert`] record (severity, trigger, lifecycle status, evidence bundle)
//! and the [`AlertBoard`] ring served by `/alerts?since=&status=&user=` on
//! the telemetry server. The *decision plane* — the `AlertPolicy` evaluated
//! after each ingested day and the append-only audit log — lives in the
//! core crate, which computes evidence from engine state and publishes the
//! resulting alerts here.
//!
//! Every published alert also lands in the trace event stream (kind
//! [`crate::event::EventKind::Alert`], so `/events` and `--trace-out` carry
//! it) and bumps the `alerts/raised_total{trigger=…}` counter.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

/// Alerts retained on the in-memory board for `/alerts`. The audit log, when
/// configured, keeps everything.
pub const ALERT_RING_CAPACITY: usize = 1024;

/// How urgent an alert is, derived at raise time from the user's position in
/// the investigation list and the magnitude of the worst deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AlertSeverity {
    /// Routine: on the watchlist, but neither near the top nor far deviated.
    Low,
    /// Either a strong rank signal or a strong deviation, not both.
    Medium,
    /// Strong rank and deviation signals together.
    High,
    /// Top-percentile rank *and* an extreme deviation.
    Critical,
}

impl AlertSeverity {
    /// The serialized (snake_case) name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertSeverity::Low => "low",
            AlertSeverity::Medium => "medium",
            AlertSeverity::High => "high",
            AlertSeverity::Critical => "critical",
        }
    }
}

impl fmt::Display for AlertSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lifecycle state of an alert: `New → Investigating → Confirmed |
/// FalsePositive → Resolved`. Transitions outside this lattice are rejected
/// by [`AlertStatus::can_transition_to`] and audit-logged when applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AlertStatus {
    /// Raised, not yet looked at.
    New,
    /// An analyst picked it up.
    Investigating,
    /// The investigation confirmed anomalous behavior.
    Confirmed,
    /// The investigation cleared the user.
    FalsePositive,
    /// Closed out after confirmation or clearance.
    Resolved,
}

impl AlertStatus {
    /// The serialized (snake_case) name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertStatus::New => "new",
            AlertStatus::Investigating => "investigating",
            AlertStatus::Confirmed => "confirmed",
            AlertStatus::FalsePositive => "false_positive",
            AlertStatus::Resolved => "resolved",
        }
    }

    /// Parses the snake_case name back into a status.
    pub fn parse(s: &str) -> Option<AlertStatus> {
        match s {
            "new" => Some(AlertStatus::New),
            "investigating" => Some(AlertStatus::Investigating),
            "confirmed" => Some(AlertStatus::Confirmed),
            "false_positive" => Some(AlertStatus::FalsePositive),
            "resolved" => Some(AlertStatus::Resolved),
            _ => None,
        }
    }

    /// Whether `self → next` is a legal lifecycle transition.
    pub fn can_transition_to(self, next: AlertStatus) -> bool {
        matches!(
            (self, next),
            (AlertStatus::New, AlertStatus::Investigating)
                | (AlertStatus::Investigating, AlertStatus::Confirmed)
                | (AlertStatus::Investigating, AlertStatus::FalsePositive)
                | (AlertStatus::Confirmed, AlertStatus::Resolved)
                | (AlertStatus::FalsePositive, AlertStatus::Resolved)
        )
    }
}

impl fmt::Display for AlertStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why an alert was raised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum AlertTrigger {
    /// A watchlisted user moved up the investigation list by at least the
    /// policy's rank-jump threshold.
    RankJump {
        /// Position on the previous scored day (1-based).
        from: usize,
        /// Position today (1-based, smaller is worse).
        to: usize,
    },
    /// A user entered the top-N watchlist who was not on it yesterday.
    NewEntrant {
        /// Position today (1-based).
        position: usize,
    },
    /// A single deviation-matrix cell crossed the policy's hard z threshold.
    RuleHit {
        /// Feature name (from the feature set).
        feature: String,
        /// Time frame index within the day.
        frame: usize,
        /// The offending z-score.
        z: f32,
    },
    /// The drift monitor saw a score-distribution shift (a system alert —
    /// carries no user).
    ScoreDrift {
        /// Behavior aspect whose distribution moved.
        aspect: String,
        /// Which quantile moved (`p50`/`p90`/`p99`).
        quantile: String,
        /// `max(today/baseline, baseline/today)`.
        ratio: f64,
    },
    /// A shard was quarantined — its users are no longer being scored (a
    /// system alert — carries no user).
    ShardDegraded {
        /// Shard index.
        shard: usize,
        /// The quarantine reason.
        reason: String,
    },
    /// A mid-day provisional alert: the wrapped trigger would fire if the
    /// open day closed with its current measurements. Confirmed or retracted
    /// when the day actually closes; never written to the audit log.
    Provisional {
        /// The trigger that would fire at day close.
        inner: Box<AlertTrigger>,
        /// How many events the open day had accumulated when scored.
        events: u64,
    },
}

impl AlertTrigger {
    /// Short kind name (`rank_jump`, `new_entrant`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            AlertTrigger::RankJump { .. } => "rank_jump",
            AlertTrigger::NewEntrant { .. } => "new_entrant",
            AlertTrigger::RuleHit { .. } => "rule_hit",
            AlertTrigger::ScoreDrift { .. } => "score_drift",
            AlertTrigger::ShardDegraded { .. } => "shard_degraded",
            AlertTrigger::Provisional { .. } => "provisional",
        }
    }

    /// For provisional triggers, the kind of the wrapped trigger; otherwise
    /// the trigger's own kind. Cooldown keys and confirm/retract matching use
    /// this so the provisional wrapper never changes daily-path behavior.
    pub fn inner_kind(&self) -> &'static str {
        match self {
            AlertTrigger::Provisional { inner, .. } => inner.inner_kind(),
            other => other.kind(),
        }
    }
}

impl fmt::Display for AlertTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertTrigger::RankJump { from, to } => write!(f, "rank jump {from} → {to}"),
            AlertTrigger::NewEntrant { position } => {
                write!(f, "new entrant at position {position}")
            }
            AlertTrigger::RuleHit { feature, frame, z } => {
                write!(f, "rule hit: {feature}@t{frame} z={z:.2}")
            }
            AlertTrigger::ScoreDrift { aspect, quantile, ratio } => {
                write!(f, "score drift: {aspect} {quantile} moved {ratio:.2}x")
            }
            AlertTrigger::ShardDegraded { shard, reason } => {
                write!(f, "shard {shard} degraded: {reason}")
            }
            AlertTrigger::Provisional { inner, events } => {
                write!(f, "provisional ({events} events): {inner}")
            }
        }
    }
}

/// One aspect's contribution to the compound ranking, as seen at raise time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AspectEvidence {
    /// Aspect name.
    pub aspect: String,
    /// The user's reconstruction-error score for this aspect today.
    pub score: f32,
    /// The user's rank among all users for this aspect today (1 = worst).
    pub rank: usize,
}

/// One cell of the compound behavior-deviation matrix that contributed to
/// the alert, with its recent history for context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureContribution {
    /// Aspect the feature belongs to.
    pub aspect: String,
    /// Feature name.
    pub feature: String,
    /// Time frame index within the day.
    pub frame: usize,
    /// Today's deviation z-score for this `(feature, frame)` cell.
    pub z: f32,
    /// The user's group's deviation for the same cell today, when group
    /// context is available — how far the *cohort* moved.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub group_z: Option<f32>,
    /// The cell's z-score over the retained matrix window, oldest first
    /// (ends with today's value).
    pub history: Vec<f32>,
}

/// The attribution payload computed when an alert is raised: why *this*
/// user, on *this* day, in terms the analyst can check against the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceBundle {
    /// The user's position in today's investigation list (1-based).
    pub position: usize,
    /// The compound priority (the critic's N-th best per-aspect rank).
    pub priority: usize,
    /// Per-aspect score and rank today.
    pub aspects: Vec<AspectEvidence>,
    /// Top-k matrix cells by today's |z|, with group context and history.
    pub top_features: Vec<FeatureContribution>,
    /// Days of history each contribution's `history` covers.
    pub window_days: usize,
}

/// A typed alert raised by the detection engine (or a system condition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Monotonic sequence number within the raising stream (0-based,
    /// gap-free; carried through checkpoints so resume neither skips nor
    /// duplicates).
    pub seq: u64,
    /// Stable id derived from `seq` (`al-000042`).
    pub id: String,
    /// The user the alert is about; `None` for system alerts
    /// ([`AlertTrigger::ScoreDrift`], [`AlertTrigger::ShardDegraded`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub user: Option<usize>,
    /// The scored day (ISO date) that raised the alert.
    pub day: String,
    /// Urgency.
    pub severity: AlertSeverity,
    /// Lifecycle state.
    pub status: AlertStatus,
    /// Why it fired.
    pub trigger: AlertTrigger,
    /// Attribution payload; absent for system alerts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub evidence: Option<EvidenceBundle>,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.user {
            Some(user) => {
                write!(f, "{} [{}] user {user} on {}: {}", self.id, self.severity, self.day, self.trigger)
            }
            None => write!(f, "{} [{}] on {}: {}", self.id, self.severity, self.day, self.trigger),
        }
    }
}

/// The process-wide alert ring behind `/alerts`.
///
/// Holds the most recent [`ALERT_RING_CAPACITY`] alerts by sequence number.
/// Lifecycle transitions applied through [`AlertBoard::update_status`] are
/// reflected in place so `/alerts?status=` filters see current state.
#[derive(Debug, Default)]
pub struct AlertBoard {
    ring: Mutex<VecDeque<Alert>>,
}

impl AlertBoard {
    /// Publishes one alert: appends it to the bounded ring, the trace event
    /// stream (kind [`crate::event::EventKind::Alert`]), bumps
    /// `alerts/raised_total{trigger=…}`, and prints a progress line.
    pub fn publish(&self, alert: &Alert) {
        crate::counter_with("alerts/raised_total", &[("trigger", alert.trigger.kind())]).add(1);
        let mut fields = vec![
            ("id".to_string(), alert.id.clone()),
            ("day".to_string(), alert.day.clone()),
            ("severity".to_string(), alert.severity.as_str().to_string()),
            ("detail".to_string(), alert.trigger.to_string()),
        ];
        if let Some(user) = alert.user {
            fields.push(("user".to_string(), user.to_string()));
        }
        crate::event::record(
            crate::event::EventKind::Alert,
            alert.trigger.kind(),
            crate::span::current_span_id(),
            None,
            fields,
        );
        crate::progress!("alert: {alert}");
        let mut ring = self.ring.lock();
        if ring.len() >= ALERT_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(alert.clone());
    }

    /// Applies a lifecycle transition to the alert with `id`, if it is still
    /// on the board. Returns `true` when an alert was updated.
    pub fn update_status(&self, id: &str, status: AlertStatus) -> bool {
        let mut ring = self.ring.lock();
        match ring.iter_mut().find(|a| a.id == id) {
            Some(alert) => {
                alert.status = status;
                true
            }
            None => false,
        }
    }

    /// The alerts matching every given filter, oldest first.
    pub fn query(
        &self,
        since: Option<u64>,
        status: Option<AlertStatus>,
        user: Option<usize>,
    ) -> Vec<Alert> {
        let ring = self.ring.lock();
        ring.iter()
            .filter(|a| since.map(|s| a.seq >= s).unwrap_or(true))
            .filter(|a| status.map(|s| a.status == s).unwrap_or(true))
            .filter(|a| user.map(|u| a.user == Some(u)).unwrap_or(true))
            .cloned()
            .collect()
    }

    /// Clears the board (tests and benches).
    pub fn reset(&self) {
        self.ring.lock().clear();
    }
}

impl crate::mem::MemAccount for AlertBoard {
    /// Approximate heap footprint of the in-memory alert ring: the ring's
    /// slot array plus each alert's owned strings and evidence payload
    /// (serialized size as a proxy for the nested evidence structs).
    fn mem_bytes(&self) -> usize {
        let ring = self.ring.lock();
        let slots = ring.capacity() * std::mem::size_of::<Alert>();
        let owned: usize = ring
            .iter()
            .map(|a| {
                a.id.capacity()
                    + a.day.capacity()
                    + a.evidence
                        .as_ref()
                        .map_or(0, |e| serde_json::to_string(e).map_or(0, |s| s.len()))
            })
            .sum();
        slots + owned
    }
}

/// The process-wide [`AlertBoard`] behind `/alerts`.
pub fn alerts() -> &'static AlertBoard {
    static BOARD: OnceLock<AlertBoard> = OnceLock::new();
    BOARD.get_or_init(AlertBoard::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(seq: u64, user: Option<usize>, status: AlertStatus) -> Alert {
        Alert {
            seq,
            id: format!("al-{seq:06}"),
            user,
            day: "2020-01-05".into(),
            severity: AlertSeverity::Medium,
            status,
            trigger: AlertTrigger::NewEntrant { position: 3 },
            evidence: None,
        }
    }

    #[test]
    fn lifecycle_transitions_follow_the_lattice() {
        use AlertStatus::*;
        assert!(New.can_transition_to(Investigating));
        assert!(Investigating.can_transition_to(Confirmed));
        assert!(Investigating.can_transition_to(FalsePositive));
        assert!(Confirmed.can_transition_to(Resolved));
        assert!(FalsePositive.can_transition_to(Resolved));
        assert!(!New.can_transition_to(Confirmed));
        assert!(!New.can_transition_to(Resolved));
        assert!(!Resolved.can_transition_to(Investigating));
        assert!(!Confirmed.can_transition_to(FalsePositive));
        for s in [New, Investigating, Confirmed, FalsePositive, Resolved] {
            assert_eq!(AlertStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(AlertStatus::parse("bogus"), None);
    }

    #[test]
    fn alerts_serialize_with_tagged_triggers() {
        let a = Alert {
            seq: 7,
            id: "al-000007".into(),
            user: Some(12),
            day: "2020-02-03".into(),
            severity: AlertSeverity::High,
            status: AlertStatus::New,
            trigger: AlertTrigger::RankJump { from: 9, to: 2 },
            evidence: Some(EvidenceBundle {
                position: 2,
                priority: 3,
                aspects: vec![AspectEvidence { aspect: "http".into(), score: 0.8, rank: 1 }],
                top_features: vec![FeatureContribution {
                    aspect: "http".into(),
                    feature: "f3".into(),
                    frame: 1,
                    z: 6.5,
                    group_z: Some(0.2),
                    history: vec![0.1, 6.5],
                }],
                window_days: 2,
            }),
        };
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("\"type\":\"rank_jump\""), "{json}");
        assert!(json.contains("\"severity\":\"high\""), "{json}");
        let back: Alert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn provisional_triggers_wrap_and_roundtrip() {
        let t = AlertTrigger::Provisional {
            inner: Box::new(AlertTrigger::NewEntrant { position: 2 }),
            events: 41,
        };
        assert_eq!(t.kind(), "provisional");
        assert_eq!(t.inner_kind(), "new_entrant");
        assert_eq!(AlertTrigger::RankJump { from: 9, to: 2 }.inner_kind(), "rank_jump");
        assert_eq!(t.to_string(), "provisional (41 events): new entrant at position 2");
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"type\":\"provisional\""), "{json}");
        assert!(json.contains("\"type\":\"new_entrant\""), "{json}");
        let back: AlertTrigger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn board_publishes_filters_and_updates() {
        let board = AlertBoard::default();
        board.publish(&alert(0, Some(3), AlertStatus::New));
        board.publish(&alert(1, Some(4), AlertStatus::New));
        board.publish(&alert(2, None, AlertStatus::New));
        assert_eq!(board.query(None, None, None).len(), 3);
        assert_eq!(board.query(Some(1), None, None).len(), 2);
        assert_eq!(board.query(None, None, Some(3)).len(), 1);
        assert!(board.update_status("al-000001", AlertStatus::Investigating));
        assert!(!board.update_status("al-999999", AlertStatus::Investigating));
        let investigating = board.query(None, Some(AlertStatus::Investigating), None);
        assert_eq!(investigating.len(), 1);
        assert_eq!(investigating[0].seq, 1);
        board.reset();
        assert!(board.query(None, None, None).is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let board = AlertBoard::default();
        for seq in 0..(ALERT_RING_CAPACITY as u64 + 10) {
            board.publish(&alert(seq, Some(1), AlertStatus::New));
        }
        let all = board.query(None, None, None);
        assert_eq!(all.len(), ALERT_RING_CAPACITY);
        assert_eq!(all[0].seq, 10);
    }
}
