//! Hierarchical wall-time spans.
//!
//! A [`SpanGuard`] starts timing when created and records its elapsed time
//! into a [`Registry`] when dropped. Guards nest per thread: a span entered
//! while another is open aggregates under `parent/child`, so the same
//! instrumented code reports flat paths when called directly and prefixed
//! paths when called from an instrumented caller.

use crate::registry::{global, Registry};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; dropping it records the elapsed wall time.
///
/// Guards are meant to live in a local (`let _span = ...`) so scopes close
/// them in reverse order of opening.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
    start: Instant,
}

impl SpanGuard<'static> {
    /// Opens a span recording into the [`global`] registry.
    pub fn enter(name: impl Into<String>) -> SpanGuard<'static> {
        SpanGuard::enter_in(global(), name)
    }
}

impl<'a> SpanGuard<'a> {
    /// Opens a span recording into a specific registry.
    pub fn enter_in(registry: &'a Registry, name: impl Into<String>) -> SpanGuard<'a> {
        let name = name.into();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name,
            };
            stack.push(path.clone());
            path
        });
        SpanGuard { registry, path, start: Instant::now() }
    }

    /// The full `parent/child` path this span aggregates under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scoped guards drop LIFO; tolerate out-of-order drops by
            // removing this span's entry wherever it sits.
            if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(pos);
            }
        });
        self.registry.record_span(&self.path, elapsed);
    }
}

/// Opens a [`SpanGuard`] on the global registry.
///
/// `span!("score")` times a plain stage; `span!("train", aspect = name)`
/// renders labels into the span name (`train(aspect=device)`), giving each
/// label combination its own aggregate.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let fields: Vec<String> = vec![$(format!("{}={}", stringify!($key), $value)),+];
        $crate::span::SpanGuard::enter(format!("{}({})", $name, fields.join(",")))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_paths() {
        let r = Registry::new();
        {
            let outer = SpanGuard::enter_in(&r, "outer");
            assert_eq!(outer.path(), "outer");
            {
                let inner = SpanGuard::enter_in(&r, "inner");
                assert_eq!(inner.path(), "outer/inner");
            }
        }
        assert_eq!(r.span_stats("outer").unwrap().count, 1);
        assert_eq!(r.span_stats("outer/inner").unwrap().count, 1);
        assert!(r.span_stats("inner").is_none());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let r = Registry::new();
        {
            let _parent = SpanGuard::enter_in(&r, "parent");
            for _ in 0..3 {
                let _child = SpanGuard::enter_in(&r, "child");
            }
        }
        assert_eq!(r.span_stats("parent/child").unwrap().count, 3);
        assert_eq!(r.span_stats("parent").unwrap().count, 1);
    }

    #[test]
    fn span_macro_renders_labels() {
        {
            let guard = crate::span!("macro_test_stage", aspect = "device", fold = 2);
            assert_eq!(guard.path(), "macro_test_stage(aspect=device,fold=2)");
        }
        let stats = global().span_stats("macro_test_stage(aspect=device,fold=2)").unwrap();
        assert!(stats.count >= 1);
    }

    #[test]
    fn stack_is_clean_after_guards_close() {
        let r = Registry::new();
        {
            let _a = SpanGuard::enter_in(&r, "a");
        }
        // A new root span must not inherit a stale parent.
        let b = SpanGuard::enter_in(&r, "b");
        assert_eq!(b.path(), "b");
    }
}
