//! Hierarchical wall-time spans.
//!
//! A [`SpanGuard`] starts timing when created and records its elapsed time
//! into a [`Registry`] when dropped. Guards nest per thread: a span entered
//! while another is open aggregates under `parent/child`, so the same
//! instrumented code reports flat paths when called directly and prefixed
//! paths when called from an instrumented caller.
//!
//! Every guard also emits [`SpanEnter`](crate::event::EventKind::SpanEnter) /
//! [`SpanExit`](crate::event::EventKind::SpanExit) trace events carrying the
//! span's structured fields (shard, aspect, …) and linked to the enclosing
//! span's enter event, feeding the event ring and `--trace-out`.

use crate::event::{self, EventKind};
use crate::registry::{global, Registry};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Open spans on this thread: `(path, enter event id)`.
    static SPAN_STACK: RefCell<Vec<(String, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The enter-event id of the innermost open span on this thread, used as the
/// parent of progress/detail/note events.
pub(crate) fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|stack| stack.borrow().last().map(|(_, id)| *id))
}

/// An open span; dropping it records the elapsed wall time.
///
/// Guards are meant to live in a local (`let _span = ...`) so scopes close
/// them in reverse order of opening.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
    start: Instant,
    enter_id: u64,
}

impl SpanGuard<'static> {
    /// Opens a span recording into the [`global`] registry.
    pub fn enter(name: impl Into<String>) -> SpanGuard<'static> {
        SpanGuard::enter_fields_in(global(), name, Vec::new())
    }

    /// Opens a span on the global registry with structured fields. The
    /// fields render into the span path (`train(aspect=device)`) — keeping
    /// one aggregate per label combination — and flow verbatim into the
    /// span's trace events.
    pub fn enter_fields(
        name: impl Into<String>,
        fields: Vec<(String, String)>,
    ) -> SpanGuard<'static> {
        SpanGuard::enter_fields_in(global(), name, fields)
    }
}

impl<'a> SpanGuard<'a> {
    /// Opens a span recording into a specific registry.
    pub fn enter_in(registry: &'a Registry, name: impl Into<String>) -> SpanGuard<'a> {
        SpanGuard::enter_fields_in(registry, name, Vec::new())
    }

    /// Opens a span recording into a specific registry, with structured
    /// fields (see [`SpanGuard::enter_fields`]).
    pub fn enter_fields_in(
        registry: &'a Registry,
        name: impl Into<String>,
        fields: Vec<(String, String)>,
    ) -> SpanGuard<'a> {
        let mut name = name.into();
        if !fields.is_empty() {
            let rendered: Vec<String> =
                fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            name = format!("{name}({})", rendered.join(","));
        }
        let (path, parent) = SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            match stack.last() {
                Some((parent_path, parent_id)) => {
                    (format!("{parent_path}/{name}"), Some(*parent_id))
                }
                None => (name, None),
            }
        });
        let enter_id = event::record(EventKind::SpanEnter, &path, parent, None, fields);
        SPAN_STACK.with(|stack| stack.borrow_mut().push((path.clone(), enter_id)));
        SpanGuard { registry, path, start: Instant::now(), enter_id }
    }

    /// The full `parent/child` path this span aggregates under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The id of this span's enter trace event.
    pub fn enter_id(&self) -> u64 {
        self.enter_id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scoped guards drop LIFO; tolerate out-of-order drops by
            // removing this span's entry wherever it sits.
            if let Some(pos) = stack.iter().rposition(|(_, id)| *id == self.enter_id) {
                stack.remove(pos);
            }
        });
        event::record(
            EventKind::SpanExit,
            &self.path,
            Some(self.enter_id),
            Some(elapsed.as_secs_f64() * 1e3),
            Vec::new(),
        );
        self.registry.record_span(&self.path, elapsed);
    }
}

/// Opens a [`SpanGuard`] on the global registry.
///
/// `span!("score")` times a plain stage; `span!("train", aspect = name)`
/// renders labels into the span name (`train(aspect=device)`), giving each
/// label combination its own aggregate, and attaches them as structured
/// fields on the span's trace events.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let fields: Vec<(String, String)> =
            vec![$((stringify!($key).to_string(), format!("{}", $value))),+];
        $crate::span::SpanGuard::enter_fields($name, fields)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn nested_spans_build_paths() {
        let r = Registry::new();
        {
            let outer = SpanGuard::enter_in(&r, "outer");
            assert_eq!(outer.path(), "outer");
            {
                let inner = SpanGuard::enter_in(&r, "inner");
                assert_eq!(inner.path(), "outer/inner");
            }
        }
        assert_eq!(r.span_stats("outer").unwrap().count, 1);
        assert_eq!(r.span_stats("outer/inner").unwrap().count, 1);
        assert!(r.span_stats("inner").is_none());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let r = Registry::new();
        {
            let _parent = SpanGuard::enter_in(&r, "parent");
            for _ in 0..3 {
                let _child = SpanGuard::enter_in(&r, "child");
            }
        }
        assert_eq!(r.span_stats("parent/child").unwrap().count, 3);
        assert_eq!(r.span_stats("parent").unwrap().count, 1);
    }

    #[test]
    fn span_macro_renders_labels() {
        {
            let guard = crate::span!("macro_test_stage", aspect = "device", fold = 2);
            assert_eq!(guard.path(), "macro_test_stage(aspect=device,fold=2)");
        }
        let stats = global().span_stats("macro_test_stage(aspect=device,fold=2)").unwrap();
        assert!(stats.count >= 1);
    }

    #[test]
    fn stack_is_clean_after_guards_close() {
        let r = Registry::new();
        {
            let _a = SpanGuard::enter_in(&r, "a");
        }
        // A new root span must not inherit a stale parent.
        let b = SpanGuard::enter_in(&r, "b");
        assert_eq!(b.path(), "b");
    }

    #[test]
    fn spans_emit_linked_trace_events_with_fields() {
        let _guard = crate::event::test_guard();
        let r = Registry::new();
        let (outer_id, inner_id);
        {
            let outer = SpanGuard::enter_fields_in(
                &r,
                "evt_outer",
                vec![("shard".into(), "3".into())],
            );
            outer_id = outer.enter_id();
            assert_eq!(outer.path(), "evt_outer(shard=3)");
            let inner = SpanGuard::enter_in(&r, "evt_inner");
            inner_id = inner.enter_id();
        }
        let events: Vec<TraceEvent> = crate::event::recent(usize::MAX)
            .into_iter()
            .filter(|e| e.name.starts_with("evt_outer"))
            .collect();
        let enter = events
            .iter()
            .find(|e| e.id == outer_id)
            .expect("outer enter event");
        assert_eq!(enter.kind, crate::event::EventKind::SpanEnter);
        assert_eq!(enter.fields, vec![("shard".to_string(), "3".to_string())]);
        let inner_enter = events
            .iter()
            .find(|e| e.id == inner_id)
            .expect("inner enter event");
        assert_eq!(inner_enter.parent, Some(outer_id), "child links to parent span");
        let exit = events
            .iter()
            .find(|e| e.kind == crate::event::EventKind::SpanExit && e.parent == Some(outer_id))
            .expect("outer exit event");
        assert!(exit.elapsed_ms.is_some());
    }
}
