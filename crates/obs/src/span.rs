//! Hierarchical wall-time spans.
//!
//! A [`SpanGuard`] starts timing when created and records its elapsed time
//! into a [`Registry`] when dropped. Guards nest per thread: a span entered
//! while another is open aggregates under `parent/child`, so the same
//! instrumented code reports flat paths when called directly and prefixed
//! paths when called from an instrumented caller.
//!
//! Every guard also emits [`SpanEnter`](crate::event::EventKind::SpanEnter) /
//! [`SpanExit`](crate::event::EventKind::SpanExit) trace events carrying the
//! span's structured fields (shard, aspect, …) and linked to the enclosing
//! span's enter event, feeding the event ring and `--trace-out`.
//!
//! # Causality across threads
//!
//! Span nesting is tracked per thread, so a span opened on a worker thread
//! would normally start a fresh root. [`TraceContext`] carries causality
//! across the gap: capture [`TraceContext::current`] before handing work to
//! another thread, and [`TraceContext::attach`] inside the worker — spans
//! opened while the guard lives nest under the captured span and share its
//! trace id, so a fanned-out day still forms a single span tree.

use crate::event::{self, EventKind};
use crate::registry::{global, Registry};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One open-span frame: `(path, enter event id, trace id)`.
type Frame = (String, u64, u64);

thread_local! {
    /// Open spans on this thread (innermost last). Attached
    /// [`TraceContext`]s push a frame too, so inheritance needs no separate
    /// ambient state.
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Allocates process-unique trace ids (1-based) for root spans.
fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed) + 1
}

/// The enter-event id of the innermost open span on this thread, used as the
/// parent of progress/detail/note events.
pub(crate) fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|stack| stack.borrow().last().map(|(_, id, _)| *id))
}

/// The trace id of the innermost open span on this thread, inherited by
/// events recorded outside an explicit span API.
pub(crate) fn current_trace_id() -> Option<u64> {
    SPAN_STACK.with(|stack| stack.borrow().last().map(|(_, _, trace)| *trace))
}

/// A capture of the calling thread's innermost open span — trace id plus
/// parent span id — that can cross a thread or channel boundary.
///
/// # Examples
///
/// ```
/// let ctx = {
///     let _day = acobe_obs::span!("day_root");
///     acobe_obs::span::TraceContext::current()
/// };
/// std::thread::spawn(move || {
///     let _ctx = ctx.attach();
///     let _work = acobe_obs::span!("worker_stage"); // nests under day_root
/// })
/// .join()
/// .unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// The captured frame; `None` when captured outside any span (attaching
    /// an empty context is a no-op, so capture sites need no special cases).
    frame: Option<Frame>,
}

impl TraceContext {
    /// Captures the innermost open span on the calling thread.
    pub fn current() -> TraceContext {
        TraceContext { frame: SPAN_STACK.with(|stack| stack.borrow().last().cloned()) }
    }

    /// An empty context: attaching it is a no-op.
    pub fn empty() -> TraceContext {
        TraceContext { frame: None }
    }

    /// The captured trace id, when inside a span.
    pub fn trace_id(&self) -> Option<u64> {
        self.frame.as_ref().map(|(_, _, trace)| *trace)
    }

    /// The captured parent span's enter-event id, when inside a span.
    pub fn span_id(&self) -> Option<u64> {
        self.frame.as_ref().map(|(_, id, _)| *id)
    }

    /// Adopts the captured span as the calling thread's innermost parent for
    /// as long as the returned guard lives: spans opened under it nest
    /// beneath the captured span's path, link to its enter event, and share
    /// its trace id.
    pub fn attach(&self) -> ContextGuard {
        let enter_id = self.frame.as_ref().map(|frame| {
            SPAN_STACK.with(|stack| stack.borrow_mut().push(frame.clone()));
            frame.1
        });
        ContextGuard { enter_id }
    }
}

/// Keeps a [`TraceContext`] attached to the current thread; detaches on
/// drop.
#[derive(Debug)]
pub struct ContextGuard {
    /// The enter id of the frame this guard pushed (`None` for an empty
    /// context).
    enter_id: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let Some(enter_id) = self.enter_id else { return };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|(_, id, _)| *id == enter_id) {
                stack.remove(pos);
            }
        });
    }
}

/// An open span; dropping it records the elapsed wall time.
///
/// Guards are meant to live in a local (`let _span = ...`) so scopes close
/// them in reverse order of opening.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
    start: Instant,
    enter_id: u64,
    trace_id: u64,
}

impl SpanGuard<'static> {
    /// Opens a span recording into the [`global`] registry.
    pub fn enter(name: impl Into<String>) -> SpanGuard<'static> {
        SpanGuard::enter_fields_in(global(), name, Vec::new())
    }

    /// Opens a span on the global registry with structured fields. The
    /// fields render into the span path (`train(aspect=device)`) — keeping
    /// one aggregate per label combination — and flow verbatim into the
    /// span's trace events.
    pub fn enter_fields(
        name: impl Into<String>,
        fields: Vec<(String, String)>,
    ) -> SpanGuard<'static> {
        SpanGuard::enter_fields_in(global(), name, fields)
    }

    /// Opens a span on the global registry whose `tags` flow into the enter
    /// trace event's fields but do **not** render into the span path.
    ///
    /// Use this for unbounded-cardinality values (dates, chunk offsets):
    /// the registry keeps one timing aggregate per span *name* while the
    /// trace stream still records which day or chunk each instance covered
    /// (`/trace?day=` selects on exactly these tags).
    pub fn enter_tagged(
        name: impl Into<String>,
        tags: Vec<(String, String)>,
    ) -> SpanGuard<'static> {
        SpanGuard::enter_full_in(global(), name, Vec::new(), tags)
    }
}

impl<'a> SpanGuard<'a> {
    /// Opens a span recording into a specific registry.
    pub fn enter_in(registry: &'a Registry, name: impl Into<String>) -> SpanGuard<'a> {
        SpanGuard::enter_fields_in(registry, name, Vec::new())
    }

    /// Opens a span recording into a specific registry, with structured
    /// fields (see [`SpanGuard::enter_fields`]).
    pub fn enter_fields_in(
        registry: &'a Registry,
        name: impl Into<String>,
        fields: Vec<(String, String)>,
    ) -> SpanGuard<'a> {
        SpanGuard::enter_full_in(registry, name, fields, Vec::new())
    }

    /// Opens a span recording into a specific registry: `fields` render into
    /// the span path and flow into the enter event; `tags` flow into the
    /// enter event only (see [`SpanGuard::enter_tagged`]).
    pub fn enter_full_in(
        registry: &'a Registry,
        name: impl Into<String>,
        fields: Vec<(String, String)>,
        tags: Vec<(String, String)>,
    ) -> SpanGuard<'a> {
        let mut name = name.into();
        if !fields.is_empty() {
            let rendered: Vec<String> =
                fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            name = format!("{name}({})", rendered.join(","));
        }
        let (path, parent, trace_id) = SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            match stack.last() {
                Some((parent_path, parent_id, trace)) => {
                    (format!("{parent_path}/{name}"), Some(*parent_id), *trace)
                }
                None => (name, None, next_trace_id()),
            }
        });
        let mut event_fields = fields;
        event_fields.extend(tags);
        let enter_id = event::record_traced(
            EventKind::SpanEnter,
            &path,
            parent,
            Some(trace_id),
            None,
            event_fields,
        );
        SPAN_STACK.with(|stack| stack.borrow_mut().push((path.clone(), enter_id, trace_id)));
        SpanGuard { registry, path, start: Instant::now(), enter_id, trace_id }
    }

    /// The full `parent/child` path this span aggregates under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The id of this span's enter trace event.
    pub fn enter_id(&self) -> u64 {
        self.enter_id
    }

    /// The trace (span tree) this span belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scoped guards drop LIFO; tolerate out-of-order drops by
            // removing this span's entry wherever it sits.
            if let Some(pos) = stack.iter().rposition(|(_, id, _)| *id == self.enter_id) {
                stack.remove(pos);
            }
        });
        event::record_traced(
            EventKind::SpanExit,
            &self.path,
            Some(self.enter_id),
            Some(self.trace_id),
            Some(elapsed.as_secs_f64() * 1e3),
            Vec::new(),
        );
        self.registry.record_span(&self.path, elapsed);
    }
}

/// Opens a [`SpanGuard`] on the global registry.
///
/// `span!("score")` times a plain stage; `span!("train", aspect = name)`
/// renders labels into the span name (`train(aspect=device)`), giving each
/// label combination its own aggregate, and attaches them as structured
/// fields on the span's trace events.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let fields: Vec<(String, String)> =
            vec![$((stringify!($key).to_string(), format!("{}", $value))),+];
        $crate::span::SpanGuard::enter_fields($name, fields)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn nested_spans_build_paths() {
        let r = Registry::new();
        {
            let outer = SpanGuard::enter_in(&r, "outer");
            assert_eq!(outer.path(), "outer");
            {
                let inner = SpanGuard::enter_in(&r, "inner");
                assert_eq!(inner.path(), "outer/inner");
            }
        }
        assert_eq!(r.span_stats("outer").unwrap().count, 1);
        assert_eq!(r.span_stats("outer/inner").unwrap().count, 1);
        assert!(r.span_stats("inner").is_none());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let r = Registry::new();
        {
            let _parent = SpanGuard::enter_in(&r, "parent");
            for _ in 0..3 {
                let _child = SpanGuard::enter_in(&r, "child");
            }
        }
        assert_eq!(r.span_stats("parent/child").unwrap().count, 3);
        assert_eq!(r.span_stats("parent").unwrap().count, 1);
    }

    #[test]
    fn span_macro_renders_labels() {
        {
            let guard = crate::span!("macro_test_stage", aspect = "device", fold = 2);
            assert_eq!(guard.path(), "macro_test_stage(aspect=device,fold=2)");
        }
        let stats = global().span_stats("macro_test_stage(aspect=device,fold=2)").unwrap();
        assert!(stats.count >= 1);
    }

    #[test]
    fn stack_is_clean_after_guards_close() {
        let r = Registry::new();
        {
            let _a = SpanGuard::enter_in(&r, "a");
        }
        // A new root span must not inherit a stale parent.
        let b = SpanGuard::enter_in(&r, "b");
        assert_eq!(b.path(), "b");
    }

    #[test]
    fn spans_emit_linked_trace_events_with_fields() {
        let _guard = crate::event::test_guard();
        let r = Registry::new();
        let (outer_id, inner_id);
        {
            let outer = SpanGuard::enter_fields_in(
                &r,
                "evt_outer",
                vec![("shard".into(), "3".into())],
            );
            outer_id = outer.enter_id();
            assert_eq!(outer.path(), "evt_outer(shard=3)");
            let inner = SpanGuard::enter_in(&r, "evt_inner");
            inner_id = inner.enter_id();
        }
        let events: Vec<TraceEvent> = crate::event::recent(usize::MAX)
            .into_iter()
            .filter(|e| e.name.starts_with("evt_outer"))
            .collect();
        let enter = events
            .iter()
            .find(|e| e.id == outer_id)
            .expect("outer enter event");
        assert_eq!(enter.kind, crate::event::EventKind::SpanEnter);
        assert_eq!(enter.fields, vec![("shard".to_string(), "3".to_string())]);
        let inner_enter = events
            .iter()
            .find(|e| e.id == inner_id)
            .expect("inner enter event");
        assert_eq!(inner_enter.parent, Some(outer_id), "child links to parent span");
        let exit = events
            .iter()
            .find(|e| e.kind == crate::event::EventKind::SpanExit && e.parent == Some(outer_id))
            .expect("outer exit event");
        assert!(exit.elapsed_ms.is_some());
        // Enter, child enter, and exit all share the root's trace id.
        let trace = enter.trace.expect("root span allocates a trace id");
        assert_eq!(inner_enter.trace, Some(trace));
        assert_eq!(exit.trace, Some(trace));
    }

    #[test]
    fn tags_reach_events_but_not_the_path() {
        let _guard = crate::event::test_guard();
        let enter_id;
        {
            let span = SpanGuard::enter_tagged(
                "tagged_stage",
                vec![("day".into(), "2011-07-09".into())],
            );
            enter_id = span.enter_id();
            assert_eq!(span.path(), "tagged_stage", "tags must not widen the path");
        }
        let events = crate::event::recent(usize::MAX);
        let enter = events.iter().find(|e| e.id == enter_id).expect("enter event");
        assert_eq!(
            enter.fields,
            vec![("day".to_string(), "2011-07-09".to_string())],
            "tags flow into the enter event"
        );
    }

    #[test]
    fn context_attach_carries_causality_across_threads() {
        let _guard = crate::event::test_guard();
        let r = Registry::new();
        let (root_id, root_trace, ctx) = {
            let root = SpanGuard::enter_in(&r, "ctx_root");
            (root.enter_id(), root.trace_id(), TraceContext::current())
        };
        assert_eq!(ctx.span_id(), Some(root_id));
        assert_eq!(ctx.trace_id(), Some(root_trace));
        let worker_ids: Vec<(u64, u64)> = std::thread::scope(|scope| {
            (0..2)
                .map(|_| {
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _attached = ctx.attach();
                        let span = SpanGuard::enter("ctx_worker");
                        (span.enter_id(), span.trace_id())
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let events = crate::event::recent(usize::MAX);
        for (enter_id, trace_id) in worker_ids {
            assert_eq!(trace_id, root_trace, "worker spans join the root's trace");
            let enter = events.iter().find(|e| e.id == enter_id).expect("worker enter");
            assert_eq!(enter.parent, Some(root_id), "worker spans nest under the root");
            assert_eq!(enter.name, "ctx_root/ctx_worker", "path inherits the root prefix");
        }
    }

    #[test]
    fn empty_context_attach_is_a_noop() {
        let ctx = TraceContext::empty();
        assert_eq!(ctx.span_id(), None);
        let _attached = ctx.attach();
        let r = Registry::new();
        let span = SpanGuard::enter_in(&r, "noop_ctx_root");
        assert_eq!(span.path(), "noop_ctx_root");
    }

    #[test]
    fn detach_restores_the_previous_parent() {
        let r = Registry::new();
        let outer = SpanGuard::enter_in(&r, "detach_outer");
        let ctx = TraceContext::current();
        {
            let _attached = ctx.attach();
            let inner = SpanGuard::enter_in(&r, "detach_inner");
            assert_eq!(inner.path(), "detach_outer/detach_inner");
        }
        // The synthetic frame is gone; the real guard is the parent again.
        let after = SpanGuard::enter_in(&r, "detach_after");
        assert_eq!(after.path(), "detach_outer/detach_after");
        assert_eq!(after.trace_id(), outer.trace_id());
    }
}
