//! Process-level self-metrics.
//!
//! [`refresh_process_metrics`] publishes gauges about the process itself —
//! uptime, resident set size, and the open day's age — refreshed on every
//! `/metrics` scrape (and by `acobe mem`) so they are current without a
//! background sampler thread:
//!
//! * `process_uptime_seconds` — wall time since the process started.
//! * `process_resident_memory_bytes` — RSS, read from `/proc/self/statm`
//!   (resident pages × the kernel page size from `/proc/self/auxv`). The
//!   gauge is simply absent on platforms without procfs.
//! * `acobe_open_day_age_seconds` — how long the current open day has been
//!   accumulating (absent until a stream opens a day; see
//!   [`crate::monitor::HealthBoard::set_open_day`]).

/// Publishes the process self-metric gauges; call before rendering
/// `/metrics`.
pub fn refresh_process_metrics() {
    let uptime = crate::progress::process_start().elapsed().as_secs_f64();
    crate::gauge("process_uptime_seconds").set(uptime);
    if let Some(rss) = resident_bytes() {
        crate::gauge("process_resident_memory_bytes").set(rss as f64);
    }
    crate::monitor::board().refresh_open_day_age();
}

/// The process's resident set size in bytes, when procfs is available.
pub fn resident_bytes() -> Option<u64> {
    statm_resident_pages().map(|pages| pages * page_size())
}

/// Resident pages from `/proc/self/statm` (second field).
fn statm_resident_pages() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    statm.split_whitespace().nth(1)?.parse::<u64>().ok()
}

/// The kernel page size from the ELF auxiliary vector (`AT_PAGESZ` in
/// `/proc/self/auxv`), falling back to 4 KiB. Reading auxv avoids guessing
/// on kernels built with 16 K/64 K pages, without a libc dependency.
fn page_size() -> u64 {
    use std::sync::OnceLock;
    static PAGE: OnceLock<u64> = OnceLock::new();
    *PAGE.get_or_init(|| auxv_page_size().unwrap_or(4096))
}

/// `AT_PAGESZ` (key 6) from the binary key/value pairs in auxv.
fn auxv_page_size() -> Option<u64> {
    const AT_PAGESZ: u64 = 6;
    let raw = std::fs::read("/proc/self/auxv").ok()?;
    let word = std::mem::size_of::<usize>();
    for pair in raw.chunks_exact(2 * word) {
        let mut key = [0u8; 8];
        let mut value = [0u8; 8];
        key[..word].copy_from_slice(&pair[..word]);
        value[..word].copy_from_slice(&pair[word..]);
        if u64::from_le_bytes(key) == AT_PAGESZ {
            let size = u64::from_le_bytes(value);
            if size.is_power_of_two() && (512..=1 << 20).contains(&size) {
                return Some(size);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_publishes_uptime_and_linux_rss() {
        refresh_process_metrics();
        assert!(crate::gauge("process_uptime_seconds").get() >= 0.0);
        if cfg!(target_os = "linux") {
            let rss = crate::gauge("process_resident_memory_bytes").get();
            // A running test binary resides in at least a megabyte.
            assert!(rss > 1 << 20, "implausible RSS {rss}");
        }
    }

    #[test]
    fn page_size_is_sane() {
        let size = page_size();
        assert!(size.is_power_of_two());
        assert!((512..=1 << 20).contains(&size), "{size}");
    }
}
