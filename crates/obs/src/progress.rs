//! Verbosity-gated progress output.
//!
//! The workspace binaries used to sprinkle `eprintln!` progress lines; they
//! now route through [`progress!`](crate::progress!) (shown at the default
//! verbosity) and [`detail!`](crate::detail!) (shown with `-v`, e.g. the
//! per-epoch training trace). Every line is prefixed with the seconds
//! elapsed since the first line, so slow stages are visible at a glance.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default level: [`progress!`](crate::progress!) lines are shown,
/// [`detail!`](crate::detail!) lines are not.
pub const LEVEL_PROGRESS: u8 = 1;
/// Verbose level (`-v`): detail lines such as per-epoch traces are shown.
pub const LEVEL_DETAIL: u8 = 2;

static VERBOSITY: AtomicU8 = AtomicU8::new(LEVEL_PROGRESS);

/// Sets the process-wide verbosity: `0` silences progress output, `1` (the
/// default) shows progress lines, `2` adds detail lines.
pub fn set_verbosity(level: u8) {
    VERBOSITY.store(level, Ordering::Relaxed);
}

/// The current process-wide verbosity.
pub fn verbosity() -> u8 {
    VERBOSITY.load(Ordering::Relaxed)
}

/// The instant of the first observability call in the process; trace-event
/// timestamps (`t_ms`) and progress-line prefixes share this origin.
pub(crate) fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Prints one timestamped line to stderr when `level` is within the current
/// verbosity, and records the line as a structured trace event regardless of
/// verbosity (so `/events` and `--trace-out` stay complete under `-q`). Use
/// through [`progress!`](crate::progress!) / [`detail!`](crate::detail!).
pub fn emit(level: u8, message: fmt::Arguments<'_>) {
    let text = message.to_string();
    let kind = if level >= LEVEL_DETAIL {
        crate::event::EventKind::Detail
    } else {
        crate::event::EventKind::Progress
    };
    crate::event::record(kind, &text, crate::span::current_span_id(), None, Vec::new());
    if verbosity() >= level {
        let elapsed = process_start().elapsed().as_secs_f64();
        eprintln!("[{elapsed:7.2}s] {text}");
    }
}

/// Prints a progress line to stderr (visible at default verbosity).
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress::emit($crate::progress::LEVEL_PROGRESS, format_args!($($arg)*))
    };
}

/// Prints a detail line to stderr (visible with `-v` / verbosity ≥ 2).
#[macro_export]
macro_rules! detail {
    ($($arg:tt)*) => {
        $crate::progress::emit($crate::progress::LEVEL_DETAIL, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_roundtrips() {
        let before = verbosity();
        set_verbosity(0);
        assert_eq!(verbosity(), 0);
        set_verbosity(LEVEL_DETAIL);
        assert_eq!(verbosity(), LEVEL_DETAIL);
        set_verbosity(before);
    }

    #[test]
    fn emit_below_threshold_is_silent() {
        // Nothing to assert on stderr; this exercises the gate for coverage
        // and must not panic.
        let before = verbosity();
        set_verbosity(0);
        crate::progress!("hidden {}", 1);
        crate::detail!("hidden {}", 2);
        set_verbosity(before);
    }
}
