//! Observability layer for the ACOBE pipeline.
//!
//! Every other crate in the workspace is instrumented through this one:
//!
//! * [`span`] — hierarchical wall-time spans: a [`SpanGuard`] records its
//!   elapsed time into a registry when dropped, and nested guards aggregate
//!   under `parent/child` paths. The [`span!`](crate::span!) macro adds
//!   `name(key=value)` labels, which also flow as structured fields into
//!   the trace event stream.
//! * [`metrics`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s behind a thread-safe [`Registry`]. Series carry label
//!   sets (`counter_with("engine/rows", &[("shard", "3")])`), and the
//!   snapshot API groups series into families.
//! * [`sink`] — a human-readable summary table (for stderr) and a JSON-lines
//!   export of every recorded metric (for machines; see `acobe detect
//!   --metrics-out`), flushed incrementally and atomically in stream mode.
//! * [`progress`] — verbosity-gated progress lines replacing the ad-hoc
//!   `eprintln!` calls the binaries used to carry.
//! * [`event`] — structured trace events (span enter/exit, progress lines,
//!   health events) with monotonic ids, thread and trace tags, kept in a
//!   bounded ring (wraps are counted, not silent) and optionally streamed
//!   to a `--trace-out` JSONL file.
//! * [`perfetto`] — Chrome/Perfetto `trace_event` JSON export of the trace
//!   stream (`acobe trace export`, `/trace?day=`), with strict format and
//!   span-tree validators.
//! * [`mem`] — the [`MemAccount`](mem::MemAccount) trait and
//!   [`MemReport`](mem::MemReport) rows behind the
//!   `acobe_state_bytes{subsystem=…,shard=…}` gauges, `/healthz`'s `mem`
//!   block, and `acobe mem`.
//! * [`proc`] — process self-metrics (uptime, RSS from `/proc/self/statm`,
//!   open-day age) refreshed on every `/metrics` scrape.
//! * [`monitor`] — score-distribution drift sketches, typed
//!   [`HealthEvent`](monitor::HealthEvent)s, and the [`monitor::board`]
//!   behind `/healthz`.
//! * [`alert`] — typed [`Alert`](alert::Alert)s with severity, lifecycle
//!   status, trigger, and evidence bundle, plus the [`alert::alerts`] board
//!   behind `/alerts`.
//! * [`prometheus`] — text exposition v0.0.4 rendering and strict
//!   validation of the `/metrics` payload.
//! * [`serve`] — the dependency-free `TcpListener` HTTP server exposing
//!   `/metrics`, `/healthz`, `/events?n=`, and `/alerts`
//!   (`--serve-metrics ADDR`).
//!
//! The crate deliberately has no external dependencies beyond the workspace
//! staples (`parking_lot`, `serde`): instrumentation must never be the part
//! of the build that breaks.
//!
//! # Examples
//!
//! ```
//! {
//!     let _outer = acobe_obs::span!("fit");
//!     let _inner = acobe_obs::span!("train", aspect = "device");
//!     acobe_obs::counter("pipeline/users").add(12);
//!     acobe_obs::counter_with("pipeline/rows", &[("shard", "0")]).add(3);
//! }
//! let stats = acobe_obs::global().span_stats("fit/train(aspect=device)");
//! assert_eq!(stats.unwrap().count, 1);
//! let jsonl = acobe_obs::to_jsonl();
//! assert!(jsonl.contains("pipeline/users"));
//! let exposition = acobe_obs::prometheus::render(acobe_obs::global());
//! assert!(exposition.contains("pipeline_rows{shard=\"0\"} 3"));
//! ```

#![warn(missing_docs)]

pub mod alert;
pub mod binio;
pub mod event;
pub mod mem;
pub mod metrics;
pub mod monitor;
pub mod perfetto;
pub mod proc;
pub mod progress;
pub mod prometheus;
pub mod registry;
pub mod serve;
pub mod sink;
pub mod span;

pub use alert::{
    Alert, AlertBoard, AlertSeverity, AlertStatus, AlertTrigger, AspectEvidence, EvidenceBundle,
    FeatureContribution,
};
pub use event::{EventKind, TraceEvent};
pub use mem::{MemAccount, MemEntry, MemReport};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use monitor::{DriftConfig, DriftMonitor, HealthEvent, QuantileSketch, ShardStatus};
pub use progress::{set_verbosity, verbosity};
pub use registry::{global, FamilyKind, MetricFamily, Registry, SpanStats};
pub use sink::{write_atomic, HistogramBucket, Labels, MetricRecord};
pub use span::{SpanGuard, TraceContext};

use std::sync::Arc;

/// The named unlabeled counter from the global registry (created on first
/// use).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// The labeled counter series from the global registry (created on first
/// use). Label order does not matter.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter_with(name, labels)
}

/// The named unlabeled gauge from the global registry (created on first
/// use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// The labeled gauge series from the global registry (created on first use).
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge_with(name, labels)
}

/// The named unlabeled histogram from the global registry; `edges` are the
/// inclusive bucket upper bounds and only apply on first creation.
pub fn histogram(name: &str, edges: &[f64]) -> Arc<Histogram> {
    global().histogram(name, edges)
}

/// The labeled histogram series from the global registry; `edges` only apply
/// on first creation of the series.
pub fn histogram_with(name: &str, labels: &[(&str, &str)], edges: &[f64]) -> Arc<Histogram> {
    global().histogram_with(name, labels, edges)
}

/// Clears every metric and span in the global registry (benches and tests).
pub fn reset() {
    global().reset();
}

/// The global registry rendered as a human-readable summary table.
pub fn summary_table() -> String {
    global().summary_table()
}

/// The global registry rendered as JSON lines (one metric per line).
pub fn to_jsonl() -> String {
    global().to_jsonl()
}

/// Sets the `--metrics-out` path used by [`flush_metrics`]; see
/// [`sink::set_metrics_path`].
pub fn set_metrics_path(path: Option<&std::path::Path>) {
    sink::set_metrics_path(path)
}

/// Atomically writes the global JSONL snapshot to the configured metrics
/// path; see [`sink::flush_metrics`].
pub fn flush_metrics() -> std::io::Result<bool> {
    sink::flush_metrics()
}
