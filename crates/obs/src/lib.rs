//! Observability layer for the ACOBE pipeline.
//!
//! Every other crate in the workspace is instrumented through this one:
//!
//! * [`span`] — hierarchical wall-time spans: a [`SpanGuard`] records its
//!   elapsed time into a registry when dropped, and nested guards aggregate
//!   under `parent/child` paths. The [`span!`](crate::span!) macro adds
//!   `name(key=value)` labels.
//! * [`metrics`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s behind a thread-safe [`Registry`].
//! * [`sink`] — a human-readable summary table (for stderr) and a JSON-lines
//!   export of every recorded metric (for machines; see `acobe detect
//!   --metrics-out`).
//! * [`progress`] — verbosity-gated progress lines replacing the ad-hoc
//!   `eprintln!` calls the binaries used to carry.
//!
//! The crate deliberately has no external dependencies beyond the workspace
//! staples (`parking_lot`, `serde`): instrumentation must never be the part
//! of the build that breaks.
//!
//! # Examples
//!
//! ```
//! {
//!     let _outer = acobe_obs::span!("fit");
//!     let _inner = acobe_obs::span!("train", aspect = "device");
//!     acobe_obs::counter("pipeline/users").add(12);
//! }
//! let stats = acobe_obs::global().span_stats("fit/train(aspect=device)");
//! assert_eq!(stats.unwrap().count, 1);
//! let jsonl = acobe_obs::to_jsonl();
//! assert!(jsonl.contains("pipeline/users"));
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod progress;
pub mod registry;
pub mod sink;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use progress::{set_verbosity, verbosity};
pub use registry::{global, Registry, SpanStats};
pub use sink::{HistogramBucket, MetricRecord};
pub use span::SpanGuard;

use std::sync::Arc;

/// The named counter from the global registry (created on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// The named gauge from the global registry (created on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// The named histogram from the global registry; `edges` are the inclusive
/// bucket upper bounds and only apply on first creation.
pub fn histogram(name: &str, edges: &[f64]) -> Arc<Histogram> {
    global().histogram(name, edges)
}

/// Clears every metric and span in the global registry (benches and tests).
pub fn reset() {
    global().reset();
}

/// The global registry rendered as a human-readable summary table.
pub fn summary_table() -> String {
    global().summary_table()
}

/// The global registry rendered as JSON lines (one metric per line).
pub fn to_jsonl() -> String {
    global().to_jsonl()
}
