//! Memory accounting: where the engine's bytes actually live.
//!
//! The big state owners — rolling deviation histories, `DayRing`s, the
//! model bank, novelty state, ingest queues, alert board/log buffers —
//! implement [`MemAccount`] and report their approximate heap footprint.
//! A [`MemReport`] collects those numbers into `(subsystem, shard, bytes)`
//! entries, publishes them as `acobe_state_bytes{subsystem=…,shard=…}`
//! gauges for `/metrics`, and renders the table behind `/healthz`'s `mem`
//! block and the `acobe mem` CLI report.

use serde::{Deserialize, Serialize};

/// A state owner that can account for its heap footprint.
pub trait MemAccount {
    /// Approximate heap bytes currently held by this owner.
    fn mem_bytes(&self) -> usize;
}

/// One accounted subsystem's footprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemEntry {
    /// Subsystem label (`rolling`, `rings`, `models`, `novelty`, …).
    pub subsystem: String,
    /// Shard index for per-shard owners; `None` for process-wide ones.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard: Option<usize>,
    /// Approximate heap bytes.
    pub bytes: u64,
}

/// A collection of [`MemEntry`] rows, one per accounted owner.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemReport {
    /// The accounted entries, in insertion order.
    pub entries: Vec<MemEntry>,
}

impl MemReport {
    /// An empty report.
    pub fn new() -> MemReport {
        MemReport::default()
    }

    /// Adds a process-wide entry.
    pub fn push(&mut self, subsystem: &str, bytes: usize) {
        self.entries.push(MemEntry { subsystem: subsystem.into(), shard: None, bytes: bytes as u64 });
    }

    /// Adds a per-shard entry.
    pub fn push_shard(&mut self, subsystem: &str, shard: usize, bytes: usize) {
        self.entries.push(MemEntry {
            subsystem: subsystem.into(),
            shard: Some(shard),
            bytes: bytes as u64,
        });
    }

    /// Appends another report's entries.
    pub fn extend(&mut self, other: MemReport) {
        self.entries.extend(other.entries);
    }

    /// Total accounted bytes.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Total bytes for one subsystem across shards.
    pub fn subsystem_total(&self, subsystem: &str) -> u64 {
        self.entries.iter().filter(|e| e.subsystem == subsystem).map(|e| e.bytes).sum()
    }

    /// Publishes every entry as an `acobe_state_bytes{subsystem=…[,shard=…]}`
    /// gauge on the global registry, plus the `acobe_state_bytes_total`
    /// rollup. Re-publishing overwrites prior values; entries absent from
    /// this report keep their last value (subsystems don't disappear
    /// mid-stream).
    pub fn publish(&self) {
        for entry in &self.entries {
            let gauge = match entry.shard {
                Some(shard) => {
                    let shard = shard.to_string();
                    crate::gauge_with(
                        "acobe_state_bytes",
                        &[("subsystem", entry.subsystem.as_str()), ("shard", shard.as_str())],
                    )
                }
                None => crate::gauge_with(
                    "acobe_state_bytes",
                    &[("subsystem", entry.subsystem.as_str())],
                ),
            };
            gauge.set(entry.bytes as f64);
        }
        crate::gauge("acobe_state_bytes_total").set(self.total() as f64);
    }

    /// A human-readable table: per-subsystem totals (shards folded
    /// together), largest first, with a grand total.
    pub fn table(&self) -> String {
        let mut subsystems: Vec<String> = Vec::new();
        for entry in &self.entries {
            if !subsystems.contains(&entry.subsystem) {
                subsystems.push(entry.subsystem.clone());
            }
        }
        let mut rows: Vec<(String, u64)> =
            subsystems.into_iter().map(|s| (s.clone(), self.subsystem_total(&s))).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::from("subsystem            bytes\n");
        for (subsystem, bytes) in rows {
            out.push_str(&format!("{subsystem:<20} {bytes:>12}\n"));
        }
        out.push_str(&format!("{:<20} {:>12}\n", "total", self.total()));
        out
    }
}

impl MemAccount for Vec<u8> {
    fn mem_bytes(&self) -> usize {
        self.capacity()
    }
}

impl MemAccount for String {
    fn mem_bytes(&self) -> usize {
        self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals_and_tables() {
        let mut report = MemReport::new();
        report.push_shard("rolling", 0, 1000);
        report.push_shard("rolling", 1, 500);
        report.push("models", 3000);
        assert_eq!(report.total(), 4500);
        assert_eq!(report.subsystem_total("rolling"), 1500);
        let table = report.table();
        let models_at = table.find("models").unwrap();
        let rolling_at = table.find("rolling").unwrap();
        assert!(models_at < rolling_at, "largest first:\n{table}");
        assert!(table.contains("total"), "{table}");
    }

    #[test]
    fn publish_feeds_labeled_gauges() {
        let mut report = MemReport::new();
        report.push_shard("mem_test_rings", 2, 4096);
        report.push("mem_test_alerts", 128);
        report.publish();
        let per_shard =
            crate::gauge_with("acobe_state_bytes", &[("subsystem", "mem_test_rings"), ("shard", "2")]);
        assert_eq!(per_shard.get(), 4096.0);
        let wide = crate::gauge_with("acobe_state_bytes", &[("subsystem", "mem_test_alerts")]);
        assert_eq!(wide.get(), 128.0);
        let rendered = crate::prometheus::render(crate::global());
        assert!(
            rendered.contains("acobe_state_bytes{shard=\"2\",subsystem=\"mem_test_rings\"} 4096")
                || rendered
                    .contains("acobe_state_bytes{subsystem=\"mem_test_rings\",shard=\"2\"} 4096"),
            "{rendered}"
        );
    }

    #[test]
    fn byte_buffers_account_capacity() {
        let buf: Vec<u8> = Vec::with_capacity(64);
        assert_eq!(MemAccount::mem_bytes(&buf), 64);
        let s = String::from("abc");
        assert!(s.mem_bytes() >= 3);
    }
}
