//! The telemetry HTTP server.
//!
//! A dependency-free `std::net::TcpListener` server exposing the live
//! observability plane of a running `acobe stream`/`acobe run`:
//!
//! * `GET /metrics` — Prometheus text exposition v0.0.4 of the global
//!   registry (see [`crate::prometheus`]).
//! * `GET /healthz` — the [`crate::monitor::board`] JSON: per-shard
//!   live/quarantined status, last ingested day, checkpoint age, days
//!   behind the feed, recent health events.
//! * `GET /events?n=N` — the last `N` structured trace events as JSON
//!   lines (default 256, capped at the ring capacity), preceded by a meta
//!   line reporting how many events the ring has dropped since start.
//! * `GET /trace?day=YYYY-MM-DD` — the span tree of one ingested day (or
//!   the whole ring without `day`) as a Chrome/Perfetto trace-event JSON
//!   document (see [`crate::perfetto`]), loadable at `ui.perfetto.dev`.
//! * `GET /alerts?since=SEQ&status=STATUS&user=ID` — the
//!   [`crate::alert::alerts`] board as a JSON array, optionally filtered.
//!
//! Malformed query parameters (a non-numeric `n`, an unknown `status`, …)
//! are rejected with HTTP 400 and a JSON error body — never silently
//! defaulted.
//!
//! The accept loop runs on its own thread in nonblocking mode, so scraping
//! never blocks ingest; each response snapshots state under short locks.
//! Binding port `0` picks an ephemeral port — the bound address is returned
//! by [`TelemetryServer::addr`] and, when the `ACOBE_SERVE_ADDR_FILE`
//! environment variable names a file, written there so CI scripts can find
//! the port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default number of events served by `/events`.
const DEFAULT_EVENT_TAIL: usize = 256;

/// A running telemetry server; dropping it stops the accept loop.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, port `0` for ephemeral) and serves
/// the telemetry endpoints until the returned handle is dropped.
pub fn serve(addr: &str) -> std::io::Result<TelemetryServer> {
    // Register the drop counter eagerly so `/metrics` always exposes it,
    // even before the first ring wrap.
    crate::counter("obs/trace_dropped_total");
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    if let Ok(path) = std::env::var("ACOBE_SERVE_ADDR_FILE") {
        if !path.is_empty() {
            let _ = std::fs::write(&path, addr.to_string());
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("acobe-telemetry".into())
        .spawn(move || accept_loop(listener, stop_flag))
        .expect("spawn telemetry server thread");
    Ok(TelemetryServer { addr, stop, handle: Some(handle) })
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: responses are small and built from short
                // lock-protected snapshots, so one connection at a time is
                // plenty for scrape traffic.
                let _ = handle_connection(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut request = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                if request.windows(4).any(|w| w == b"\r\n\r\n".as_slice())
                    || request.len() > 16 * 1024
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&request);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    if method != "GET" {
        return write_response(&mut stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            crate::proc::refresh_process_metrics();
            let body = crate::prometheus::render(crate::registry::global());
            write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let body = crate::monitor::board().healthz_json();
            write_response(&mut stream, 200, "application/json; charset=utf-8", &body)
        }
        "/events" => {
            let n = match parse_numeric_param(
                query,
                "n",
                crate::event::RING_CAPACITY as u64,
            ) {
                Ok(n) => n.map(|n| n as usize).unwrap_or(DEFAULT_EVENT_TAIL),
                Err(body) => {
                    return write_response(
                        &mut stream,
                        400,
                        "application/json; charset=utf-8",
                        &body,
                    )
                }
            };
            let events = crate::event::recent_jsonl(n);
            // Lead with a meta line: consumers parsing event lines can tell
            // whether the ring view is complete or a wrapped suffix.
            let meta = serde_json::json!({
                "meta": {
                    "trace_dropped_total": crate::event::dropped_total(),
                    "ring_capacity": crate::event::RING_CAPACITY,
                }
            });
            let body = format!("{meta}\n{events}");
            write_response(&mut stream, 200, "application/x-ndjson; charset=utf-8", &body)
        }
        "/trace" => match trace_response(query) {
            Ok(body) => {
                write_response(&mut stream, 200, "application/json; charset=utf-8", &body)
            }
            Err(body) => {
                write_response(&mut stream, 400, "application/json; charset=utf-8", &body)
            }
        },
        "/alerts" => match alerts_response(query) {
            Ok(body) => {
                write_response(&mut stream, 200, "application/json; charset=utf-8", &body)
            }
            Err(body) => {
                write_response(&mut stream, 400, "application/json; charset=utf-8", &body)
            }
        },
        "/" => write_response(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "acobe telemetry: /metrics /healthz /events?n= /trace?day= \
             /alerts?since=&status=&user=\n",
        ),
        _ => write_response(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// The raw value of `key=` in a query string, if present.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query.and_then(|q| {
        q.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k == key).then_some(v)
        })
    })
}

/// JSON body for a 400 response.
fn error_body(message: &str) -> String {
    serde_json::json!({ "error": message }).to_string() + "\n"
}

/// Parses an optional numeric query parameter, rejecting non-numeric values
/// and values above `max` with a JSON error body (no silent fallback).
fn parse_numeric_param(
    query: Option<&str>,
    key: &str,
    max: u64,
) -> Result<Option<u64>, String> {
    match query_param(query, key) {
        None => Ok(None),
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) if n <= max => Ok(Some(n)),
            Ok(n) => Err(error_body(&format!(
                "parameter '{key}' too large: {n} (max {max})"
            ))),
            Err(_) => Err(error_body(&format!(
                "parameter '{key}' must be a non-negative integer, got '{raw}'"
            ))),
        },
    }
}

/// Builds the `/trace` Chrome trace-event document: the span tree of one
/// day (`?day=YYYY-MM-DD`) or the whole event ring. An unknown day is an
/// empty trace, not an error — a malformed `day` value is rejected.
fn trace_response(query: Option<&str>) -> Result<String, String> {
    let events = crate::event::recent(usize::MAX);
    let selected = match query_param(query, "day") {
        None => events,
        Some(day) => {
            let well_formed = day.len() == 10
                && day.chars().enumerate().all(|(i, c)| match i {
                    4 | 7 => c == '-',
                    _ => c.is_ascii_digit(),
                });
            if !well_formed {
                return Err(error_body(&format!(
                    "parameter 'day' must be YYYY-MM-DD, got '{day}'"
                )));
            }
            crate::perfetto::day_subtree(&events, day)
        }
    };
    Ok(crate::perfetto::render(&selected))
}

/// Builds the `/alerts` JSON array, validating `since`/`status`/`user`.
fn alerts_response(query: Option<&str>) -> Result<String, String> {
    let since = parse_numeric_param(query, "since", u64::MAX)?;
    let user = parse_numeric_param(query, "user", usize::MAX as u64)?.map(|u| u as usize);
    let status = match query_param(query, "status") {
        None => None,
        Some(raw) => match crate::alert::AlertStatus::parse(raw) {
            Some(status) => Some(status),
            None => {
                return Err(error_body(&format!(
                    "parameter 'status' must be one of \
                     new/investigating/confirmed/false_positive/resolved, got '{raw}'"
                )))
            }
        },
    };
    let alerts = crate::alert::alerts().query(since, status, user);
    let mut body =
        serde_json::to_string_pretty(&alerts).expect("alerts serialize");
    body.push('\n');
    Ok(body)
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Fetches `path` from a running telemetry server over a plain TCP
/// connection, returning `(status, body)`. Used by tests, `promcheck`, and
/// the example — no HTTP client dependency anywhere.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
        })?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_healthz_and_events() {
        let _guard = crate::event::test_guard();
        crate::counter("serve_test/requests").add(3);
        crate::event::record(
            crate::event::EventKind::Note,
            "serve_test_marker",
            None,
            None,
            vec![],
        );
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr().to_string();

        let (status, body) = http_get(&addr, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200);
        assert!(body.contains("serve_test_requests 3"), "{body}");
        crate::prometheus::validate(&body).expect("served exposition validates");

        let (status, body) = http_get(&addr, "/healthz").expect("scrape /healthz");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).expect("healthz is JSON");
        assert!(doc.get("status").is_some(), "{body}");

        let (status, body) = http_get(&addr, "/events?n=4096").expect("scrape /events");
        assert_eq!(status, 200);
        assert!(body.contains("serve_test_marker"), "{body}");
        // The first line is the meta record with the ring-drop counter.
        let first = body.lines().next().expect("nonempty body");
        let meta: serde_json::Value = serde_json::from_str(first).expect("meta line is JSON");
        assert!(meta["meta"]["trace_dropped_total"].is_u64(), "{first}");
        assert_eq!(
            meta["meta"]["ring_capacity"].as_u64(),
            Some(crate::event::RING_CAPACITY as u64)
        );

        let (status, _) = http_get(&addr, "/nope").expect("scrape unknown path");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn metrics_carry_process_self_metrics_and_drop_counter() {
        let _guard = crate::event::test_guard();
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200);
        assert!(body.contains("process_uptime_seconds"), "{body}");
        assert!(body.contains("obs_trace_dropped_total"), "{body}");
        assert!(body.contains("acobe_open_day_age_seconds"), "{body}");
        if cfg!(target_os = "linux") {
            assert!(body.contains("process_resident_memory_bytes"), "{body}");
        }
        crate::prometheus::validate(&body).expect("self-metrics exposition validates");
        server.shutdown();
    }

    #[test]
    fn trace_endpoint_serves_a_day_subtree() {
        let _guard = crate::event::test_guard();
        {
            let _day = crate::span!("serve_trace_day", day = "2011-07-09");
            let _child = crate::span!("serve_trace_child");
        }
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr().to_string();

        let (status, body) = http_get(&addr, "/trace?day=2011-07-09").expect("scrape /trace");
        assert_eq!(status, 200);
        crate::perfetto::validate(&body).expect("trace export validates");
        assert!(body.contains("serve_trace_day"), "{body}");
        assert!(body.contains("serve_trace_child"), "{body}");

        // Unknown day: valid empty trace. Malformed day: 400.
        let (status, body) = http_get(&addr, "/trace?day=1999-01-01").expect("request");
        assert_eq!(status, 200);
        assert!(!body.contains("serve_trace_day"), "{body}");
        let (status, body) = http_get(&addr, "/trace?day=tuesday").expect("request");
        assert_eq!(status, 400, "{body}");

        // No day: the whole ring exports and validates.
        let (status, body) = http_get(&addr, "/trace").expect("request");
        assert_eq!(status, 200);
        crate::perfetto::validate(&body).expect("full-ring export validates");

        server.shutdown();
    }

    #[test]
    fn bad_query_params_are_rejected_with_json_400() {
        let _guard = crate::event::test_guard();
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr().to_string();

        for path in [
            "/events?n=abc",
            "/events?n=-1",
            "/events?n=99999999",
            "/alerts?since=soon",
            "/alerts?user=alice",
            "/alerts?status=snoozed",
        ] {
            let (status, body) = http_get(&addr, path).expect("request");
            assert_eq!(status, 400, "{path} -> {body}");
            let doc: serde_json::Value =
                serde_json::from_str(&body).expect("error body is JSON");
            assert!(doc["error"].is_string(), "{path} -> {body}");
        }

        // The documented upper bound is still accepted.
        let max = crate::event::RING_CAPACITY;
        let (status, _) = http_get(&addr, &format!("/events?n={max}")).expect("request");
        assert_eq!(status, 200);

        server.shutdown();
    }

    #[test]
    fn alerts_endpoint_serves_the_board() {
        let _guard = crate::event::test_guard();
        let alert = crate::alert::Alert {
            seq: 0,
            id: "al-000000".into(),
            user: Some(90210),
            day: "2020-03-04".into(),
            severity: crate::alert::AlertSeverity::High,
            status: crate::alert::AlertStatus::New,
            trigger: crate::alert::AlertTrigger::NewEntrant { position: 1 },
            evidence: None,
        };
        crate::alert::alerts().publish(&alert);
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr().to_string();

        let (status, body) = http_get(&addr, "/alerts?user=90210").expect("request");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).expect("alerts are JSON");
        let arr = doc.as_array().expect("array");
        assert_eq!(arr.len(), 1, "{body}");
        assert_eq!(arr[0]["id"], "al-000000");
        assert_eq!(arr[0]["trigger"]["type"], "new_entrant");

        // A filter matching nothing is an empty array, not an error.
        let (status, body) =
            http_get(&addr, "/alerts?user=90210&status=resolved").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body.trim(), "[]");

        server.shutdown();
    }

    #[test]
    fn addr_file_records_bound_port() {
        let _guard = crate::event::test_guard();
        let dir = std::env::temp_dir().join("acobe_obs_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("addr.txt");
        std::env::set_var("ACOBE_SERVE_ADDR_FILE", &path);
        let server = serve("127.0.0.1:0").expect("bind");
        std::env::remove_var("ACOBE_SERVE_ADDR_FILE");
        let written = std::fs::read_to_string(&path).expect("addr file written");
        assert_eq!(written, server.addr().to_string());
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
