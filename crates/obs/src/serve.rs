//! The telemetry HTTP server.
//!
//! A dependency-free `std::net::TcpListener` server exposing the live
//! observability plane of a running `acobe stream`/`acobe run`:
//!
//! * `GET /metrics` — Prometheus text exposition v0.0.4 of the global
//!   registry (see [`crate::prometheus`]).
//! * `GET /healthz` — the [`crate::monitor::board`] JSON: per-shard
//!   live/quarantined status, last ingested day, checkpoint age, days
//!   behind the feed, recent health events.
//! * `GET /events?n=N` — the last `N` structured trace events as JSON
//!   lines (default 256).
//!
//! The accept loop runs on its own thread in nonblocking mode, so scraping
//! never blocks ingest; each response snapshots state under short locks.
//! Binding port `0` picks an ephemeral port — the bound address is returned
//! by [`TelemetryServer::addr`] and, when the `ACOBE_SERVE_ADDR_FILE`
//! environment variable names a file, written there so CI scripts can find
//! the port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default number of events served by `/events`.
const DEFAULT_EVENT_TAIL: usize = 256;

/// A running telemetry server; dropping it stops the accept loop.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, port `0` for ephemeral) and serves
/// the telemetry endpoints until the returned handle is dropped.
pub fn serve(addr: &str) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    if let Ok(path) = std::env::var("ACOBE_SERVE_ADDR_FILE") {
        if !path.is_empty() {
            let _ = std::fs::write(&path, addr.to_string());
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("acobe-telemetry".into())
        .spawn(move || accept_loop(listener, stop_flag))
        .expect("spawn telemetry server thread");
    Ok(TelemetryServer { addr, stop, handle: Some(handle) })
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: responses are small and built from short
                // lock-protected snapshots, so one connection at a time is
                // plenty for scrape traffic.
                let _ = handle_connection(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut request = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                if request.windows(4).any(|w| w == b"\r\n\r\n".as_slice())
                    || request.len() > 16 * 1024
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&request);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    if method != "GET" {
        return write_response(&mut stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let body = crate::prometheus::render(crate::registry::global());
            write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let body = crate::monitor::board().healthz_json();
            write_response(&mut stream, 200, "application/json; charset=utf-8", &body)
        }
        "/events" => {
            let n = query
                .and_then(|q| {
                    q.split('&').find_map(|kv| {
                        kv.strip_prefix("n=").and_then(|v| v.parse::<usize>().ok())
                    })
                })
                .unwrap_or(DEFAULT_EVENT_TAIL);
            let body = crate::event::recent_jsonl(n);
            write_response(&mut stream, 200, "application/x-ndjson; charset=utf-8", &body)
        }
        "/" => write_response(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "acobe telemetry: /metrics /healthz /events?n=\n",
        ),
        _ => write_response(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Fetches `path` from a running telemetry server over a plain TCP
/// connection, returning `(status, body)`. Used by tests, `promcheck`, and
/// the example — no HTTP client dependency anywhere.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
        })?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_healthz_and_events() {
        let _guard = crate::event::test_guard();
        crate::counter("serve_test/requests").add(3);
        crate::event::record(
            crate::event::EventKind::Note,
            "serve_test_marker",
            None,
            None,
            vec![],
        );
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr().to_string();

        let (status, body) = http_get(&addr, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200);
        assert!(body.contains("serve_test_requests 3"), "{body}");
        crate::prometheus::validate(&body).expect("served exposition validates");

        let (status, body) = http_get(&addr, "/healthz").expect("scrape /healthz");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).expect("healthz is JSON");
        assert!(doc.get("status").is_some(), "{body}");

        let (status, body) = http_get(&addr, "/events?n=4096").expect("scrape /events");
        assert_eq!(status, 200);
        assert!(body.contains("serve_test_marker"), "{body}");

        let (status, _) = http_get(&addr, "/nope").expect("scrape unknown path");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn addr_file_records_bound_port() {
        let _guard = crate::event::test_guard();
        let dir = std::env::temp_dir().join("acobe_obs_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("addr.txt");
        std::env::set_var("ACOBE_SERVE_ADDR_FILE", &path);
        let server = serve("127.0.0.1:0").expect("bind");
        std::env::remove_var("ACOBE_SERVE_ADDR_FILE");
        let written = std::fs::read_to_string(&path).expect("addr file written");
        assert_eq!(written, server.addr().to_string());
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
