//! Strict Prometheus text-exposition checker (no external dependencies).
//!
//! CI uses this to fail the `telemetry-smoke` job on malformed `/metrics`
//! output; it shares its parser with the `acobe_obs::prometheus` unit tests
//! so the renderer and the checker cannot drift apart.
//!
//! Usage:
//!   promcheck --addr 127.0.0.1:9184 [--path /metrics]
//!   promcheck --file exposition.txt
//!   promcheck --addr-file addr.txt      # addr written by ACOBE_SERVE_ADDR_FILE

use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = arg_value(&args, "--path").unwrap_or_else(|| "/metrics".to_string());

    let addr = match (arg_value(&args, "--addr"), arg_value(&args, "--addr-file")) {
        (Some(addr), _) => Some(addr),
        (None, Some(file)) => match std::fs::read_to_string(&file) {
            Ok(text) => Some(text.trim().to_string()),
            Err(e) => {
                eprintln!("promcheck: cannot read addr file {file}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => None,
    };

    let text = if let Some(addr) = addr {
        match acobe_obs::serve::http_get(&addr, &path) {
            Ok((200, body)) => body,
            Ok((status, body)) => {
                eprintln!("promcheck: GET {addr}{path} returned {status}: {body}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("promcheck: GET {addr}{path} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(file) = arg_value(&args, "--file") {
        match std::fs::read_to_string(&file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("promcheck: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("usage: promcheck --addr HOST:PORT [--path /metrics] | --addr-file FILE | --file FILE");
        return ExitCode::FAILURE;
    };

    match acobe_obs::prometheus::validate(&text) {
        Ok(samples) => {
            println!("promcheck: ok ({samples} samples, {} bytes)", text.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("promcheck: malformed exposition: {e}");
            ExitCode::FAILURE
        }
    }
}
