//! The thread-safe registry holding every named metric and span aggregate.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::sink::{HistogramBucket, MetricRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Aggregated wall-time statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans on this path.
    pub count: u64,
    /// Summed wall time.
    pub total: Duration,
    /// Shortest single span.
    pub min: Duration,
    /// Longest single span.
    pub max: Duration,
}

impl SpanStats {
    fn record(&mut self, elapsed: Duration) {
        if self.count == 0 {
            self.min = elapsed;
            self.max = elapsed;
        } else {
            self.min = self.min.min(elapsed);
            self.max = self.max.max(elapsed);
        }
        self.count += 1;
        self.total += elapsed;
    }

    /// Mean wall time per span.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// A collection of named counters, gauges, histograms, and span aggregates.
///
/// Most code uses the process-wide instance from [`global`]; tests can make
/// private registries to stay isolated.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The named histogram, created on first use; later calls ignore `edges`
    /// and return the existing instance.
    pub fn histogram(&self, name: &str, edges: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(edges)))
            .clone()
    }

    /// Folds one completed span into the aggregate for `path`.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let mut spans = self.spans.lock();
        spans
            .entry(path.to_string())
            .or_insert(SpanStats {
                count: 0,
                total: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
            })
            .record(elapsed);
    }

    /// Aggregated statistics of one span path, if any span completed there.
    pub fn span_stats(&self, path: &str) -> Option<SpanStats> {
        self.spans.lock().get(path).copied()
    }

    /// Every span path recorded so far, in sorted order.
    pub fn span_paths(&self) -> Vec<String> {
        self.spans.lock().keys().cloned().collect()
    }

    /// Clears all metrics and span aggregates, keeping registered metric
    /// objects alive (outstanding `Arc` handles keep working).
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
        self.spans.lock().clear();
    }

    /// Serializable records for every span aggregate, name-sorted.
    pub fn span_records(&self) -> Vec<MetricRecord> {
        self.spans
            .lock()
            .iter()
            .map(|(name, s)| MetricRecord::Span {
                name: name.clone(),
                count: s.count,
                total_ms: s.total.as_secs_f64() * 1e3,
                mean_ms: s.mean().as_secs_f64() * 1e3,
                min_ms: s.min.as_secs_f64() * 1e3,
                max_ms: s.max.as_secs_f64() * 1e3,
            })
            .collect()
    }

    /// Serializable records for every metric and span, spans first.
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        let mut records = self.span_records();
        records.extend(self.counters.lock().iter().map(|(name, c)| {
            MetricRecord::Counter { name: name.clone(), value: c.get() }
        }));
        records.extend(self.gauges.lock().iter().map(|(name, g)| {
            MetricRecord::Gauge { name: name.clone(), value: g.get() }
        }));
        records.extend(self.histograms.lock().iter().map(|(name, h)| {
            let snap = h.snapshot();
            let mut buckets: Vec<HistogramBucket> = snap
                .edges
                .iter()
                .zip(&snap.counts)
                .map(|(&le, &count)| HistogramBucket { le: Some(le), count })
                .collect();
            buckets.push(HistogramBucket {
                le: None,
                count: *snap.counts.last().expect("overflow bucket"),
            });
            MetricRecord::Histogram {
                name: name.clone(),
                count: snap.total,
                sum: snap.sum,
                min: snap.min,
                max: snap.max,
                buckets,
            }
        }));
        records
    }

    /// Renders the registry as JSON lines, one [`MetricRecord`] per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&serde_json::to_string(&record).expect("metric record serializes"));
            out.push('\n');
        }
        out
    }

    /// Renders the registry as a human-readable summary table.
    pub fn summary_table(&self) -> String {
        crate::sink::render_summary(&self.snapshot())
    }
}

/// The process-wide registry used by [`span!`](crate::span!) and the
/// crate-level convenience functions.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        r.histogram("h", &[1.0, 2.0]).observe(1.5);
        // Second lookup ignores the (different) edges.
        r.histogram("h", &[9.0]).observe(1.5);
        assert_eq!(r.histogram("h", &[]).snapshot().total, 2);
    }

    #[test]
    fn span_stats_aggregate() {
        let r = Registry::new();
        r.record_span("a/b", Duration::from_millis(10));
        r.record_span("a/b", Duration::from_millis(30));
        let s = r.span_stats("a/b").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_millis(40));
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.mean(), Duration::from_millis(20));
        assert!(r.span_stats("missing").is_none());
    }

    #[test]
    fn reset_clears_but_keeps_handles_usable() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(7);
        r.record_span("s", Duration::from_millis(1));
        r.reset();
        assert_eq!(c.get(), 0);
        assert!(r.span_stats("s").is_none());
        c.inc();
        assert_eq!(r.counter("x").get(), 1);
    }
}
