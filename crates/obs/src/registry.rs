//! The thread-safe registry holding every named metric and span aggregate.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::sink::{HistogramBucket, Labels, MetricRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Normalizes a borrowed label slice into the canonical sorted owned form
/// used as part of a series identity.
pub fn label_set(labels: &[(&str, &str)]) -> Labels {
    let mut set: Labels =
        labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
    set.sort();
    set
}

/// One metric series: a family name plus its sorted label set. Two lookups
/// with the same labels in different orders resolve to the same series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Labels,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        SeriesKey { name: name.to_string(), labels: label_set(labels) }
    }
}

/// Aggregated wall-time statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans on this path.
    pub count: u64,
    /// Summed wall time.
    pub total: Duration,
    /// Shortest single span.
    pub min: Duration,
    /// Longest single span.
    pub max: Duration,
}

impl SpanStats {
    fn record(&mut self, elapsed: Duration) {
        if self.count == 0 {
            self.min = elapsed;
            self.max = elapsed;
        } else {
            self.min = self.min.min(elapsed);
            self.max = self.max.max(elapsed);
        }
        self.count += 1;
        self.total += elapsed;
    }

    /// Mean wall time per span.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// The kind of a [`MetricFamily`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Span path aggregates.
    Span,
    /// Monotonic counters.
    Counter,
    /// Latest-value gauges.
    Gauge,
    /// Fixed-bucket histograms.
    Histogram,
}

/// Every series of one metric family (same name and kind), as produced by
/// [`Registry::families`]. The Prometheus exposition renders one `# TYPE`
/// header per family followed by its series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Family name shared by every series.
    pub name: String,
    /// Metric kind shared by every series.
    pub kind: FamilyKind,
    /// The family's series, label-sorted.
    pub records: Vec<MetricRecord>,
}

/// A collection of named counters, gauges, histograms, and span aggregates.
///
/// Series carry label sets: `counter_with("engine/rows", &[("shard", "3")])`
/// and the unlabeled `counter("engine/rows")` are distinct series of the same
/// family. Most code uses the process-wide instance from [`global`]; tests
/// can make private registries to stay isolated.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<SeriesKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<SeriesKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<SeriesKey, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    /// Serializes whole-registry operations ([`Registry::snapshot`] vs
    /// [`Registry::reset`]) so a reset never appears half-applied across
    /// metric families. Lock order is always gate → family maps.
    gate: Mutex<()>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The named unlabeled counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter series `name{labels}`, created on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.counters.lock();
        map.entry(SeriesKey::new(name, labels))
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The named unlabeled gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge series `name{labels}`, created on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        map.entry(SeriesKey::new(name, labels))
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The named unlabeled histogram, created on first use; later calls
    /// ignore `edges` and return the existing instance.
    pub fn histogram(&self, name: &str, edges: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], edges)
    }

    /// The histogram series `name{labels}`, created on first use; later calls
    /// ignore `edges` and return the existing instance.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        edges: &[f64],
    ) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        map.entry(SeriesKey::new(name, labels))
            .or_insert_with(|| Arc::new(Histogram::new(edges)))
            .clone()
    }

    /// Folds one completed span into the aggregate for `path`.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let mut spans = self.spans.lock();
        spans
            .entry(path.to_string())
            .or_insert(SpanStats {
                count: 0,
                total: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
            })
            .record(elapsed);
    }

    /// Aggregated statistics of one span path, if any span completed there.
    pub fn span_stats(&self, path: &str) -> Option<SpanStats> {
        self.spans.lock().get(path).copied()
    }

    /// Every span path recorded so far, in sorted order.
    pub fn span_paths(&self) -> Vec<String> {
        self.spans.lock().keys().cloned().collect()
    }

    /// Clears all metrics and span aggregates, keeping registered metric
    /// objects alive (outstanding `Arc` handles keep working). Atomic with
    /// respect to [`Registry::snapshot`]: a concurrent snapshot sees either
    /// the full pre-reset state or the full post-reset state, never counters
    /// cleared with histograms or spans still populated.
    pub fn reset(&self) {
        let _gate = self.gate.lock();
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
        self.spans.lock().clear();
    }

    /// Serializable records for every span aggregate, name-sorted.
    pub fn span_records(&self) -> Vec<MetricRecord> {
        self.spans
            .lock()
            .iter()
            .map(|(name, s)| MetricRecord::Span {
                name: name.clone(),
                count: s.count,
                total_ms: s.total.as_secs_f64() * 1e3,
                mean_ms: s.mean().as_secs_f64() * 1e3,
                min_ms: s.min.as_secs_f64() * 1e3,
                max_ms: s.max.as_secs_f64() * 1e3,
            })
            .collect()
    }

    /// Serializable records for every metric and span, spans first, then
    /// counters, gauges, and histograms, each (name, labels)-sorted.
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        let _gate = self.gate.lock();
        let mut records = self.span_records();
        records.extend(self.counters.lock().iter().map(|(key, c)| {
            MetricRecord::Counter {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: c.get(),
            }
        }));
        records.extend(self.gauges.lock().iter().map(|(key, g)| {
            MetricRecord::Gauge {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: g.get(),
            }
        }));
        records.extend(self.histograms.lock().iter().map(|(key, h)| {
            let snap = h.snapshot();
            let mut buckets: Vec<HistogramBucket> = snap
                .edges
                .iter()
                .zip(&snap.counts)
                .map(|(&le, &count)| HistogramBucket { le: Some(le), count })
                .collect();
            buckets.push(HistogramBucket {
                le: None,
                count: *snap.counts.last().expect("overflow bucket"),
            });
            MetricRecord::Histogram {
                name: key.name.clone(),
                labels: key.labels.clone(),
                count: snap.total,
                sum: snap.sum,
                min: snap.min,
                max: snap.max,
                buckets,
            }
        }));
        records
    }

    /// The snapshot grouped into metric families: consecutive series of the
    /// same kind and name, in snapshot order (spans, counters, gauges,
    /// histograms; families name-sorted within each kind).
    pub fn families(&self) -> Vec<MetricFamily> {
        let mut families: Vec<MetricFamily> = Vec::new();
        for record in self.snapshot() {
            let kind = match &record {
                MetricRecord::Span { .. } => FamilyKind::Span,
                MetricRecord::Counter { .. } => FamilyKind::Counter,
                MetricRecord::Gauge { .. } => FamilyKind::Gauge,
                MetricRecord::Histogram { .. } => FamilyKind::Histogram,
            };
            match families.last_mut() {
                Some(f) if f.kind == kind && f.name == record.name() => f.records.push(record),
                _ => families.push(MetricFamily {
                    name: record.name().to_string(),
                    kind,
                    records: vec![record],
                }),
            }
        }
        families
    }

    /// Renders the registry as JSON lines, one [`MetricRecord`] per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&serde_json::to_string(&record).expect("metric record serializes"));
            out.push('\n');
        }
        out
    }

    /// Renders the registry as a human-readable summary table.
    pub fn summary_table(&self) -> String {
        crate::sink::render_summary(&self.snapshot())
    }
}

/// The process-wide registry used by [`span!`](crate::span!) and the
/// crate-level convenience functions.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        r.histogram("h", &[1.0, 2.0]).observe(1.5);
        // Second lookup ignores the (different) edges.
        r.histogram("h", &[9.0]).observe(1.5);
        assert_eq!(r.histogram("h", &[]).snapshot().total, 2);
    }

    #[test]
    fn labels_distinguish_series_and_order_does_not() {
        let r = Registry::new();
        r.counter_with("ingest", &[("shard", "0")]).add(1);
        r.counter_with("ingest", &[("shard", "1")]).add(2);
        r.counter("ingest").add(10);
        assert_eq!(r.counter_with("ingest", &[("shard", "1")]).get(), 2);
        assert_eq!(r.counter("ingest").get(), 10);
        let a = r.gauge_with("g", &[("x", "1"), ("y", "2")]);
        let b = r.gauge_with("g", &[("y", "2"), ("x", "1")]);
        a.set(5.0);
        assert_eq!(b.get(), 5.0);
    }

    #[test]
    fn families_group_series_by_name_and_kind() {
        let r = Registry::new();
        r.counter_with("ingest", &[("shard", "0")]).add(1);
        r.counter_with("ingest", &[("shard", "1")]).add(2);
        r.counter("other").inc();
        r.gauge("ingest").set(3.0); // same name, different kind → own family
        let fams = r.families();
        let ingest_counters: Vec<&MetricFamily> = fams
            .iter()
            .filter(|f| f.name == "ingest" && f.kind == FamilyKind::Counter)
            .collect();
        assert_eq!(ingest_counters.len(), 1);
        assert_eq!(ingest_counters[0].records.len(), 2);
        assert!(fams
            .iter()
            .any(|f| f.name == "ingest" && f.kind == FamilyKind::Gauge));
    }

    #[test]
    fn span_stats_aggregate() {
        let r = Registry::new();
        r.record_span("a/b", Duration::from_millis(10));
        r.record_span("a/b", Duration::from_millis(30));
        let s = r.span_stats("a/b").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_millis(40));
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.mean(), Duration::from_millis(20));
        assert!(r.span_stats("missing").is_none());
    }

    #[test]
    fn reset_clears_but_keeps_handles_usable() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(7);
        r.record_span("s", Duration::from_millis(1));
        r.reset();
        assert_eq!(c.get(), 0);
        assert!(r.span_stats("s").is_none());
        c.inc();
        assert_eq!(r.counter("x").get(), 1);
    }

    /// Regression test: `reset` used to clear family by family without a
    /// guard, so a snapshot running concurrently could observe the counters
    /// already cleared while spans (cleared last) still held pre-reset data.
    ///
    /// The writer populates families in *reverse* snapshot-read order
    /// (histogram, then counter, then span) and resets at the end of each
    /// cycle. Snapshot reads spans first: if it sees the span, the histogram
    /// and counter writes happened before that read, and — with reset gated
    /// out for the duration of the snapshot — nothing may clear them before
    /// their (later) reads. Seeing the span with a zero counter or histogram
    /// therefore proves a reset tore through mid-snapshot.
    #[test]
    fn reset_is_atomic_with_respect_to_snapshot() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let r = std::sync::Arc::new(Registry::new());
        let stop = std::sync::Arc::new(AtomicBool::new(false));

        let writer = {
            let r = std::sync::Arc::clone(&r);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let c = r.counter("ops");
                let h = r.histogram("lat", &[1.0]);
                while !stop.load(Ordering::Relaxed) {
                    h.observe(0.5);
                    c.inc();
                    r.record_span("w", Duration::from_micros(1));
                    r.reset();
                }
            })
        };

        for _ in 0..2000 {
            let snap = r.snapshot();
            let span_seen = snap
                .iter()
                .any(|m| matches!(m, MetricRecord::Span { name, count, .. } if name == "w" && *count > 0));
            if !span_seen {
                continue;
            }
            let counter = snap.iter().find_map(|m| match m {
                MetricRecord::Counter { name, value, .. } if name == "ops" => Some(*value),
                _ => None,
            });
            let hist = snap.iter().find_map(|m| match m {
                MetricRecord::Histogram { name, count, .. } if name == "lat" => Some(*count),
                _ => None,
            });
            assert!(
                counter.unwrap_or(0) > 0 && hist.unwrap_or(0) > 0,
                "torn reset visible: span present but counter={counter:?} histogram={hist:?}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
