//! Prometheus text exposition (format version 0.0.4).
//!
//! [`render`] turns a [`Registry`] snapshot into the `/metrics` payload:
//! one `# TYPE` header per family, labeled samples, and full histogram
//! series (`_bucket{le=…}` cumulative counts ending at `+Inf`, `_sum`,
//! `_count`). Span aggregates — which have no Prometheus type — export as
//! three gauge families keyed by a `path` label.
//!
//! [`validate`] is the strict parser behind the exposition unit tests and
//! the `promcheck` CI binary; it shares this module so renderer and checker
//! can never drift apart.

use crate::registry::{FamilyKind, Registry};
use crate::sink::MetricRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps an internal metric name (`engine/ingest_ms`) to a valid Prometheus
/// name: `/`, `-`, `.`, and spaces become `_`; any other invalid character
/// is dropped; a leading digit gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(c),
            '/' | '-' | '.' | ' ' => out.push('_'),
            _ => {}
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    if out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value: backslash, double quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the registry as Prometheus text exposition v0.0.4.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    // Span aggregates first, folded into three gauge families.
    let spans = registry.span_records();
    if !spans.is_empty() {
        for (family, pick) in [
            ("acobe_span_count", 0usize),
            ("acobe_span_total_ms", 1usize),
            ("acobe_span_max_ms", 2usize),
        ] {
            let _ = writeln!(out, "# TYPE {family} gauge");
            for record in &spans {
                if let MetricRecord::Span { name, count, total_ms, max_ms, .. } = record {
                    let value = match pick {
                        0 => *count as f64,
                        1 => *total_ms,
                        _ => *max_ms,
                    };
                    let labels = render_labels(&[], Some(("path", name.as_str())));
                    let _ = writeln!(out, "{family}{labels} {}", format_value(value));
                }
            }
        }
    }

    for family in registry.families() {
        if family.kind == FamilyKind::Span {
            continue;
        }
        let name = sanitize_name(&family.name);
        let type_str = match family.kind {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
            FamilyKind::Span => unreachable!(),
        };
        let _ = writeln!(out, "# TYPE {name} {type_str}");
        for record in &family.records {
            match record {
                MetricRecord::Counter { labels, value, .. } => {
                    let _ = writeln!(
                        out,
                        "{name}{} {value}",
                        render_labels(labels, None)
                    );
                }
                MetricRecord::Gauge { labels, value, .. } => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(labels, None),
                        format_value(*value)
                    );
                }
                MetricRecord::Histogram { labels, count, sum, buckets, .. } => {
                    // Internal buckets are per-bucket counts; Prometheus
                    // wants cumulative counts ending at +Inf.
                    let mut cumulative = 0u64;
                    for bucket in buckets {
                        cumulative += bucket.count;
                        let le = match bucket.le {
                            Some(edge) => format_value(edge),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, Some(("le", le.as_str())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(labels, None),
                        format_value(*sum)
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {count}",
                        render_labels(labels, None)
                    );
                }
                MetricRecord::Span { .. } => {}
            }
        }
    }
    out
}

fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.as_bytes()[0].is_ascii_digit()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && !name.as_bytes()[0].is_ascii_digit()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| format!("invalid sample value: {s:?}")),
    }
}

struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label block: {line:?}"))?;
            if close < brace {
                return Err(format!("malformed label block: {line:?}"));
            }
            (&line[..brace], Some((&line[brace + 1..close], &line[close + 1..])))
        }
        None => {
            let space = line
                .find(' ')
                .ok_or_else(|| format!("sample without value: {line:?}"))?;
            (&line[..space], None::<(&str, &str)>)
        }
    };
    if !is_valid_name(name_part) {
        return Err(format!("invalid metric name {name_part:?} in {line:?}"));
    }
    let (labels, value_part) = match rest {
        Some((label_block, tail)) => {
            let mut labels = Vec::new();
            let mut chars = label_block.chars().peekable();
            while chars.peek().is_some() {
                let mut label_name = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    label_name.push(c);
                }
                if !is_valid_label_name(&label_name) {
                    return Err(format!("invalid label name {label_name:?} in {line:?}"));
                }
                if chars.next() != Some('"') {
                    return Err(format!("label value not quoted in {line:?}"));
                }
                let mut value = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('\\') => value.push('\\'),
                            Some('"') => value.push('"'),
                            Some('n') => value.push('\n'),
                            other => {
                                return Err(format!(
                                    "invalid escape \\{other:?} in {line:?}"
                                ))
                            }
                        },
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\n' => {
                            return Err(format!("raw newline in label value: {line:?}"))
                        }
                        _ => value.push(c),
                    }
                }
                if !closed {
                    return Err(format!("unterminated label value in {line:?}"));
                }
                labels.push((label_name, value));
                match chars.peek() {
                    Some(',') => {
                        chars.next();
                    }
                    Some(other) => {
                        return Err(format!(
                            "unexpected {other:?} after label value in {line:?}"
                        ))
                    }
                    None => {}
                }
            }
            (labels, tail.trim_start())
        }
        None => {
            let space = line.find(' ').expect("checked above");
            (Vec::new(), line[space + 1..].trim_start())
        }
    };
    let value_str = value_part.split_whitespace().next().unwrap_or("");
    let value = parse_value(value_str)?;
    Ok(Sample { name: name_part.to_string(), labels, value })
}

/// Strictly validates a text exposition document: name and label charsets,
/// quoting and escapes, `# TYPE` headers preceding their samples (one per
/// family), parseable values, and — for histogram families — per-series
/// `_bucket` sets with nondecreasing cumulative counts ending at an `+Inf`
/// bucket that matches `_count`, plus `_sum`/`_count` presence. Returns
/// `Ok(sample_count)` (an empty document is valid).
pub fn validate(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| format!("line {}: bare TYPE", lineno + 1))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without kind", lineno + 1))?;
            if !is_valid_name(name) {
                return Err(format!("line {}: invalid family name {name:?}", lineno + 1));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {}: unknown metric type {kind:?}", lineno + 1));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {}: duplicate TYPE for {name:?}", lineno + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let sample =
            parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        // Histogram samples attach to their family via suffix.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                sample
                    .name
                    .strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                    .map(str::to_string)
            })
            .unwrap_or_else(|| sample.name.clone());
        if !types.contains_key(&family) {
            return Err(format!(
                "line {}: sample {:?} precedes or lacks its # TYPE header",
                lineno + 1,
                sample.name
            ));
        }
        samples.push(sample);
    }

    // Histogram family coherence.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        // Group buckets by their non-`le` label signature.
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        for sample in &samples {
            let sig = |labels: &[(String, String)]| -> String {
                let mut parts: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                parts.sort();
                parts.join(",")
            };
            if sample.name == format!("{family}_bucket") {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("{family}_bucket without le label"))?;
                let edge = parse_value(&le.1)
                    .map_err(|_| format!("{family}_bucket has bad le {:?}", le.1))?;
                series.entry(sig(&sample.labels)).or_default().push((edge, sample.value));
            } else if sample.name == format!("{family}_sum") {
                sums.insert(sig(&sample.labels), sample.value);
            } else if sample.name == format!("{family}_count") {
                counts.insert(sig(&sample.labels), sample.value);
            }
        }
        if series.is_empty() {
            return Err(format!("histogram {family} has no _bucket samples"));
        }
        for (sig, buckets) in &series {
            let mut sorted = buckets.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le values comparable"));
            let last = sorted.last().expect("nonempty");
            if last.0 != f64::INFINITY {
                return Err(format!("histogram {family}{{{sig}}} lacks an +Inf bucket"));
            }
            let mut prev = -1.0;
            for (le, count) in &sorted {
                if *count < prev {
                    return Err(format!(
                        "histogram {family}{{{sig}}} bucket le={le} count {count} \
                         below previous {prev} (not cumulative)"
                    ));
                }
                prev = *count;
            }
            let count = counts
                .get(sig)
                .ok_or_else(|| format!("histogram {family}{{{sig}}} lacks _count"))?;
            if !sums.contains_key(sig) {
                return Err(format!("histogram {family}{{{sig}}} lacks _sum"));
            }
            if *count != last.1 {
                return Err(format!(
                    "histogram {family}{{{sig}}}: _count {count} != +Inf bucket {}",
                    last.1
                ));
            }
        }
    }

    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("engine/ingest_ms"), "engine_ingest_ms");
        assert_eq!(sanitize_name("train/epoch-ms"), "train_epoch_ms");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("weird!@#"), "weird");
        assert_eq!(sanitize_name("!@#"), "_");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn renders_labeled_counters_and_gauges() {
        let r = Registry::new();
        r.counter_with("engine/rows_scored", &[("shard", "3")]).add(42);
        r.gauge_with("engine/score_quantile", &[("aspect", "http"), ("q", "p99")]).set(1.5);
        let text = render(&r);
        assert!(
            text.contains("# TYPE engine_rows_scored counter"),
            "{text}"
        );
        assert!(text.contains("engine_rows_scored{shard=\"3\"} 42"), "{text}");
        assert!(
            text.contains("engine_score_quantile{aspect=\"http\",q=\"p99\"} 1.5"),
            "{text}"
        );
        validate(&text).expect("rendered exposition validates");
    }

    #[test]
    fn renders_cumulative_histogram_with_inf_bucket() {
        let r = Registry::new();
        let h = r.histogram_with("lat", &[("shard", "0")], &[1.0, 2.0]);
        h.observe(0.5); // bucket le=1
        h.observe(1.5); // bucket le=2
        h.observe(9.0); // overflow
        let text = render(&r);
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        assert!(text.contains("lat_bucket{shard=\"0\",le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{shard=\"0\",le=\"2\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{shard=\"0\",le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_count{shard=\"0\"} 3"), "{text}");
        assert!(text.contains("lat_sum{shard=\"0\"} 11"), "{text}");
        validate(&text).expect("rendered exposition validates");
    }

    #[test]
    fn renders_spans_as_path_labeled_gauges() {
        let r = Registry::new();
        r.record_span("fit/train(aspect=device)", std::time::Duration::from_millis(10));
        let text = render(&r);
        assert!(text.contains("# TYPE acobe_span_count gauge"), "{text}");
        assert!(
            text.contains("acobe_span_count{path=\"fit/train(aspect=device)\"} 1"),
            "{text}"
        );
        assert!(text.contains("acobe_span_total_ms{path="), "{text}");
        validate(&text).expect("rendered exposition validates");
    }

    #[test]
    fn label_values_needing_escapes_roundtrip_through_validate() {
        let r = Registry::new();
        r.counter_with("evil", &[("why", "quote\" slash\\ line\nend")]).inc();
        let text = render(&r);
        validate(&text).expect("escaped exposition validates");
        assert!(text.contains(r#"quote\" slash\\ line\nend"#), "{text}");
    }

    #[test]
    fn empty_registry_renders_empty_and_validates() {
        let r = Registry::new();
        let text = render(&r);
        assert_eq!(text, "");
        assert_eq!(validate(&text).unwrap(), 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        // Sample before its TYPE header.
        assert!(validate("orphan 1\n").is_err());
        // Invalid name charset.
        assert!(validate("# TYPE bad-name counter\n").is_err());
        // Duplicate TYPE.
        assert!(validate("# TYPE a counter\n# TYPE a counter\na 1\n").is_err());
        // Unparseable value.
        assert!(validate("# TYPE a counter\na forty\n").is_err());
        // Unterminated label value.
        assert!(validate("# TYPE a counter\na{x=\"y} 1\n").is_err());
        // Histogram without +Inf.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate(text).unwrap_err().contains("+Inf"));
        // Histogram with non-cumulative buckets.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
                    h_sum 1\nh_count 3\n";
        assert!(validate(text).unwrap_err().contains("cumulative"));
        // Histogram _count disagreeing with +Inf bucket.
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(validate(text).unwrap_err().contains("_count"));
        // Histogram missing _sum.
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n";
        assert!(validate(text).unwrap_err().contains("_sum"));
    }

    #[test]
    fn validator_accepts_full_rendered_registry() {
        let r = Registry::new();
        r.counter("plain").inc();
        r.counter_with("sharded", &[("shard", "0")]).add(1);
        r.counter_with("sharded", &[("shard", "1")]).add(2);
        r.gauge("g").set(f64::INFINITY);
        r.histogram("h", &[0.5, 5.0]).observe(1.0);
        r.histogram_with("h2", &[("aspect", "a b")], &[1.0]).observe(2.0);
        r.record_span("root/child", std::time::Duration::from_micros(500));
        let text = render(&r);
        let n = validate(&text).expect("validates");
        assert!(n >= 10, "expected a rich document, got {n} samples:\n{text}");
    }
}
