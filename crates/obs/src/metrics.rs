//! Metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! All three are cheap to update from many threads at once: counters and
//! gauges are single atomics, histograms take a short uncontended lock per
//! observation.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing integer metric.
///
/// Increments from any number of threads land exactly (atomic adds).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A metric holding the latest `f64` value set (population sizes, spans of
/// days, configuration knobs worth exporting).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.set(0.0);
    }
}

/// Aggregate state of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds, ascending.
    pub edges: Vec<f64>,
    /// Per-bucket observation counts; the final entry is the overflow bucket
    /// for values above the last edge (`counts.len() == edges.len() + 1`).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`0.0` when empty).
    pub min: f64,
    /// Largest observed value (`0.0` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observed value, or `None` when nothing was observed.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }
}

#[derive(Debug)]
struct HistState {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A fixed-bucket histogram: bucket `i` counts observations `v <= edges[i]`
/// (first matching edge wins), and one extra overflow bucket counts values
/// above every edge.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    state: Mutex<HistState>,
}

impl Histogram {
    /// A histogram over the given ascending, inclusive bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics when `edges` is not strictly ascending.
    pub fn new(edges: &[f64]) -> Self {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            state: Mutex::new(HistState {
                counts: vec![0; edges.len() + 1],
                total: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
            }),
        }
    }

    /// The inclusive bucket upper bounds.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let bucket = self
            .edges
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(self.edges.len());
        let mut s = self.state.lock();
        s.counts[bucket] += 1;
        s.sum += value;
        if s.total == 0 {
            s.min = value;
            s.max = value;
        } else {
            s.min = s.min.min(value);
            s.max = s.max.max(value);
        }
        s.total += 1;
    }

    /// A consistent snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.state.lock();
        HistogramSnapshot {
            edges: self.edges.clone(),
            counts: s.counts.clone(),
            total: s.total,
            sum: s.sum,
            min: s.min,
            max: s.max,
        }
    }

    pub(crate) fn reset(&self) {
        let mut s = self.state.lock();
        s.counts.iter_mut().for_each(|c| *c = 0);
        s.total = 0;
        s.sum = 0.0;
        s.min = 0.0;
        s.max = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_and_get() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_holds_latest() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        // Buckets: (-inf, 1], (1, 10], (10, 100], (100, +inf).
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(1.0); // exactly on an edge -> first bucket
        h.observe(1.0001); // just past it -> second bucket
        h.observe(10.0); // second bucket (inclusive)
        h.observe(100.0); // third bucket
        h.observe(100.5); // overflow
        h.observe(-7.0); // below everything -> first bucket
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 2, 1, 1]);
        assert_eq!(snap.total, 6);
        assert_eq!(snap.min, -7.0);
        assert_eq!(snap.max, 100.5);
        let mean = snap.mean().unwrap();
        assert!((mean - (1.0 + 1.0001 + 10.0 + 100.0 + 100.5 - 7.0) / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.snapshot().mean(), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_edges_rejected() {
        let _ = Histogram::new(&[5.0, 1.0]);
    }
}
