//! Structured trace events.
//!
//! Every span enter/exit, every `progress!`/`detail!` line, and every health
//! event becomes a [`TraceEvent`] with a process-wide monotonic id. Events
//! are retained in a bounded in-memory ring (served by `/events?n=` on the
//! telemetry server) and, when a trace file is configured (`--trace-out`),
//! appended incrementally as JSON lines — each event is flushed as it
//! happens, so a killed run still leaves a complete trace prefix.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Events kept in the in-memory ring; older events are dropped (the trace
/// file, when configured, keeps everything).
pub const RING_CAPACITY: usize = 4096;

/// What kind of moment a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventKind {
    /// A span opened; `name` is the full span path.
    SpanEnter,
    /// A span closed; `parent` is the id of its enter event and
    /// `elapsed_ms` its wall time.
    SpanExit,
    /// A `progress!` line (shown at default verbosity).
    Progress,
    /// A `detail!` line (shown with `-v`).
    Detail,
    /// A typed health event from the monitor module.
    Health,
    /// A typed alert published on the alert board.
    Alert,
    /// A free-form annotation (e.g. per-day engine markers).
    Note,
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Process-wide monotonic id (1-based).
    pub id: u64,
    /// For span enters, the id of the enclosing span's enter event; for span
    /// exits, the id of the matching enter event; for progress/detail/note
    /// events, the id of the innermost open span on the emitting thread.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent: Option<u64>,
    /// The trace (span tree) this event belongs to. Allocated when a root
    /// span opens with no enclosing span and no attached
    /// [`TraceContext`](crate::span::TraceContext); inherited by everything
    /// underneath, including spans opened on worker threads under an
    /// attached context. `None` for events outside any span.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<u64>,
    /// Process-local numeric id (1-based, in order of first event) of the
    /// thread that emitted the event.
    #[serde(default)]
    pub tid: u64,
    /// Milliseconds since the first event of the process.
    pub t_ms: f64,
    /// Event kind.
    pub kind: EventKind,
    /// Span path, message text, or health event name.
    pub name: String,
    /// Wall time for span exits.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub elapsed_ms: Option<f64>,
    /// Structured `(key, value)` fields: shard/day/aspect context.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fields: Vec<(String, String)>,
}

struct EventLog {
    next_id: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    writer: Mutex<Option<BufWriter<File>>>,
    /// Fast path: skip serialization when no file sink is configured.
    file_active: AtomicBool,
}

fn log() -> &'static EventLog {
    static LOG: OnceLock<EventLog> = OnceLock::new();
    LOG.get_or_init(|| EventLog {
        next_id: AtomicU64::new(0),
        ring: Mutex::new(VecDeque::with_capacity(256)),
        writer: Mutex::new(None),
        file_active: AtomicBool::new(false),
    })
}

fn t_ms() -> f64 {
    crate::progress::process_start().elapsed().as_secs_f64() * 1e3
}

/// Trace-event capture switch (default on). See [`set_capture`].
static CAPTURE: AtomicBool = AtomicBool::new(true);

/// Turns trace-event capture on or off, returning the previous setting.
///
/// With capture off, [`record_traced`] still allocates ids — span parent
/// links stay consistent across the gap — but skips the ring and file
/// sinks. This is the knob `engine_bench` flips to measure the overhead
/// of tracing itself against an otherwise identical ingest loop.
pub fn set_capture(enabled: bool) -> bool {
    CAPTURE.swap(enabled, Ordering::Relaxed)
}

/// Whether trace-event capture is currently enabled.
pub fn capture_enabled() -> bool {
    CAPTURE.load(Ordering::Relaxed)
}

/// Events dropped from the in-memory ring because it wrapped. Mirrored by
/// the `obs/trace_dropped_total` counter in `/metrics` and reported in the
/// `/events` meta line — a non-zero value means the ring view is a suffix
/// of the full trace (use `--trace-out` for everything).
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Total events dropped from the ring since process start.
pub fn dropped_total() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Process-local numeric id of the calling thread (1-based, assigned on the
/// thread's first event). Gives trace exporters a stable per-thread track
/// without relying on OS thread ids.
pub fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed) + 1;
    }
    TID.with(|t| *t)
}

/// Records one event, returning its id. The event's trace id is taken from
/// the calling thread's innermost open span (see
/// [`record_traced`] to pass one explicitly).
pub fn record(
    kind: EventKind,
    name: &str,
    parent: Option<u64>,
    elapsed_ms: Option<f64>,
    fields: Vec<(String, String)>,
) -> u64 {
    record_traced(kind, name, parent, crate::span::current_trace_id(), elapsed_ms, fields)
}

/// Records one event with an explicit trace id, returning its event id.
pub fn record_traced(
    kind: EventKind,
    name: &str,
    parent: Option<u64>,
    trace: Option<u64>,
    elapsed_ms: Option<f64>,
    fields: Vec<(String, String)>,
) -> u64 {
    let log = log();
    let id = log.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    if !CAPTURE.load(Ordering::Relaxed) {
        return id;
    }
    let event = TraceEvent {
        id,
        parent,
        trace,
        tid: current_tid(),
        t_ms: t_ms(),
        kind,
        name: name.to_string(),
        elapsed_ms,
        fields,
    };

    if log.file_active.load(Ordering::Relaxed) {
        if let Some(w) = log.writer.lock().as_mut() {
            let line = serde_json::to_string(&event).expect("trace event serializes");
            // Flush per event: an incremental trace beats buffered speed here.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }

    let mut ring = log.ring.lock();
    if ring.len() >= RING_CAPACITY {
        ring.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
        crate::counter("obs/trace_dropped_total").inc();
    }
    ring.push_back(event);
    id
}

/// Records a free-form [`EventKind::Note`] with the current span as parent.
pub fn note(name: &str, fields: &[(&str, &str)]) -> u64 {
    record(
        EventKind::Note,
        name,
        crate::span::current_span_id(),
        None,
        fields.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect(),
    )
}

/// The last `n` events, oldest first.
pub fn recent(n: usize) -> Vec<TraceEvent> {
    let ring = log().ring.lock();
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

/// The last `n` events rendered as JSON lines, oldest first.
pub fn recent_jsonl(n: usize) -> String {
    let mut out = String::new();
    for event in recent(n) {
        out.push_str(&serde_json::to_string(&event).expect("trace event serializes"));
        out.push('\n');
    }
    out
}

/// Opens (truncating) the `--trace-out` file; every subsequent event is
/// appended and flushed as a JSON line.
pub fn set_trace_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let log = log();
    *log.writer.lock() = Some(BufWriter::new(file));
    log.file_active.store(true, Ordering::Relaxed);
    Ok(())
}

/// Detaches the trace file, flushing buffered events.
pub fn clear_trace_file() {
    let log = log();
    log.file_active.store(false, Ordering::Relaxed);
    if let Some(mut w) = log.writer.lock().take() {
        let _ = w.flush();
    }
}

/// Serializes tests that assert on the shared global ring (unit tests run
/// concurrently on threads within one binary).
#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic_and_ring_is_bounded() {
        let _guard = test_guard();
        let a = record(EventKind::Note, "a", None, None, vec![]);
        let b = record(EventKind::Note, "b", None, None, vec![]);
        assert!(b > a);
        // Other tests may record into the shared ring concurrently, so only
        // assert on our own events: both still present, ids intact.
        let ids: Vec<u64> = recent(usize::MAX).iter().map(|e| e.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
        // The ring never exceeds its capacity.
        for i in 0..RING_CAPACITY + 10 {
            record(EventKind::Note, &format!("spam{i}"), None, None, vec![]);
        }
        assert_eq!(recent(usize::MAX).len(), RING_CAPACITY);
    }

    #[test]
    fn events_roundtrip_through_serde() {
        let event = TraceEvent {
            id: 7,
            parent: Some(3),
            trace: Some(1),
            tid: 2,
            t_ms: 12.5,
            kind: EventKind::SpanExit,
            name: "engine/ingest_day".into(),
            elapsed_ms: Some(4.25),
            fields: vec![("shard".into(), "2".into())],
        };
        let line = serde_json::to_string(&event).unwrap();
        assert!(line.contains("\"kind\":\"span_exit\""), "{line}");
        let back: TraceEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn pre_trace_jsonl_still_deserializes() {
        // Trace files written before the `trace`/`tid` fields existed must
        // keep loading (e.g. through `acobe trace export`).
        let line = r#"{"id":7,"parent":3,"t_ms":12.5,"kind":"span_exit",
            "name":"engine/ingest_day","elapsed_ms":4.25}"#;
        let back: TraceEvent = serde_json::from_str(line).unwrap();
        assert_eq!(back.trace, None);
        assert_eq!(back.tid, 0);
        assert_eq!(back.parent, Some(3));
    }

    #[test]
    fn ring_wrap_counts_dropped_events() {
        let _guard = test_guard();
        // Fill the ring, then overflow it by a known amount: the drop
        // counter must advance by exactly the overflow.
        for i in 0..RING_CAPACITY {
            record(EventKind::Note, &format!("fill{i}"), None, None, vec![]);
        }
        let before = dropped_total();
        let counter_before = crate::counter("obs/trace_dropped_total").get();
        const OVERFLOW: usize = 37;
        for i in 0..OVERFLOW {
            record(EventKind::Note, &format!("spill{i}"), None, None, vec![]);
        }
        assert_eq!(dropped_total() - before, OVERFLOW as u64);
        assert_eq!(
            crate::counter("obs/trace_dropped_total").get() - counter_before,
            OVERFLOW as u64
        );
        assert_eq!(recent(usize::MAX).len(), RING_CAPACITY);
    }

    #[test]
    fn capture_off_skips_sinks_but_keeps_ids_monotonic() {
        let _guard = test_guard();
        let before = record(EventKind::Note, "pre_gate", None, None, vec![]);
        assert!(set_capture(false));
        let gated = record(EventKind::Note, "gated_probe", None, None, vec![]);
        set_capture(true);
        let after = record(EventKind::Note, "post_gate", None, None, vec![]);
        assert!(before < gated && gated < after, "ids keep advancing");
        let names: Vec<String> = recent(usize::MAX).iter().map(|e| e.name.clone()).collect();
        assert!(!names.iter().any(|n| n == "gated_probe"), "gated event reached the ring");
        assert!(names.iter().any(|n| n == "post_gate"));
    }

    #[test]
    fn trace_file_receives_events_incrementally() {
        let dir = std::env::temp_dir().join("acobe_obs_event_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        set_trace_file(&path).unwrap();
        let id = record(EventKind::Note, "file_probe", None, None, vec![]);
        // Flushed per event: visible before the file is closed.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("file_probe"), "{text}");
        assert!(text.contains(&format!("\"id\":{id}")), "{text}");
        clear_trace_file();
        std::fs::remove_dir_all(&dir).ok();
    }
}
