//! Shared binary-wire primitives for the v3 checkpoint format.
//!
//! Everything the persistence layer needs to lay bytes down deterministically
//! lives here so core, nn, and the CLI agree on one encoding: little-endian
//! scalars, LEB128 varints, a table-based IEEE CRC-32, IEEE-754 half-precision
//! conversion with round-to-nearest-even, and a family of *lossless-certified*
//! array codecs that pick the smallest encoding which provably round-trips
//! bit-identically (raw f32, f16, u8, and sparse variants of each).
//!
//! The codecs never trade accuracy for size: a narrower encoding is chosen
//! only when every element converts back to the exact original bit pattern,
//! so a decoded checkpoint reproduces scores bit-for-bit by construction.

use std::fmt;
use std::sync::OnceLock;

/// Decode-side failure: truncated input, bad tag, or a corrupt payload.
/// Carries a human-readable description naming what was being decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError(pub String);

impl BinError {
    /// A new error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        BinError(msg.into())
    }
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BinError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// IEEE CRC-32 of `bytes` (the common zlib/PNG variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// f32 <-> f16 (IEEE-754 binary16), round-to-nearest-even
// ---------------------------------------------------------------------------

/// Convert an `f32` to IEEE-754 binary16 bits with round-to-nearest-even,
/// handling subnormals, overflow-to-infinity, and NaN payload truncation.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: keep NaN-ness (set a mantissa bit if any were set).
        return sign | 0x7C00 | if man != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent in half precision.
    let half_exp = exp - 127 + 15;
    if half_exp >= 0x1F {
        // Overflow to infinity.
        return sign | 0x7C00;
    }
    if half_exp <= 0 {
        // Subnormal half (or underflow to zero). The implicit leading 1
        // becomes explicit; shift right by (1 - half_exp) extra places.
        if half_exp < -10 {
            return sign; // Rounds to +-0 even at nearest-even.
        }
        let man = man | 0x0080_0000; // make leading 1 explicit
        let shift = (14 - half_exp) as u32; // 24-bit mantissa -> 10-bit field
        let half_man = (man >> shift) as u16;
        // Round to nearest, ties to even.
        let round_bit = 1u32 << (shift - 1);
        if (man & round_bit) != 0 && ((man & (round_bit - 1)) | (half_man as u32 & 1)) != 0 {
            return sign | (half_man + 1);
        }
        return sign | half_man;
    }
    // Normal case: 23-bit mantissa -> 10-bit field, round-to-nearest-even.
    let half_man = (man >> 13) as u16;
    let out = sign | ((half_exp as u16) << 10) | half_man;
    let round_bit = 0x0000_1000u32; // bit 12
    if (man & round_bit) != 0 && ((man & (round_bit - 1)) | (half_man as u32 & 1)) != 0 {
        // Carry may overflow mantissa into exponent; that is correct
        // (rounds up to the next binade or to infinity).
        return out + 1;
    }
    out
}

/// Convert IEEE-754 binary16 bits back to `f32` (exact; every half value is
/// representable in single precision).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    let bits = if exp == 0 {
        if man == 0 {
            sign // +-0
        } else {
            // Subnormal half: normalize into a single-precision normal.
            let mut exp32 = 127 - 15 + 1;
            let mut man32 = man;
            while man32 & 0x0400 == 0 {
                man32 <<= 1;
                exp32 -= 1;
            }
            man32 &= 0x03FF;
            sign | ((exp32 as u32) << 23) | (man32 << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (man << 13) // Inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// True when `v` survives an f32→f16→f32 round trip bit-identically.
#[inline]
pub fn f16_exact(v: f32) -> bool {
    f16_bits_to_f32(f32_to_f16_bits(v)).to_bits() == v.to_bits()
}

/// True when `v` is a small non-negative integer that round-trips through u8
/// bit-identically (this excludes -0.0 and NaN by construction).
#[inline]
pub fn u8_exact(v: f32) -> bool {
    let b = v.to_bits();
    if b > 0x437F_0000 {
        // Positive values above 255.0, or any negative value (sign bit set
        // makes bits >= 0x8000_0000), or NaN/Inf.
        return false;
    }
    let t = v as u8; // in-range by the bits check above
    (t as f32).to_bits() == b
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// An empty writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated bytes without consuming the writer.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f32 as its little-endian bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends an f64 as its little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Unsigned LEB128 varint.
    pub fn put_varu(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varu(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Count-prefixed raw little-endian f32 array.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_varu(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Count-prefixed raw little-endian f64 array.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_varu(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }
}

/// Cursor over a byte slice with typed little-endian reads. Every read is
/// bounds-checked and returns a [`BinError`] naming the failure instead of
/// panicking, so corrupt checkpoints surface as typed errors.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// The next `n` bytes, advancing the cursor.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::new(format!(
                "truncated input: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, BinError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, BinError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, BinError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian i32.
    pub fn get_i32(&mut self) -> Result<i32, BinError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an f32 from its little-endian bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, BinError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an f64 from its little-endian bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Unsigned LEB128 varint (max 10 bytes / 64 bits).
    pub fn get_varu(&mut self) -> Result<u64, BinError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(BinError::new("varint overflows 64 bits"));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A varint length that must also fit in `usize` and be plausibly
    /// backed by the remaining input (at `min_elem_bytes` per element), so
    /// corrupt counts fail fast instead of attempting huge allocations.
    pub fn get_len(&mut self, what: &str, min_elem_bytes: usize) -> Result<usize, BinError> {
        let n = self.get_varu()?;
        let n = usize::try_from(n)
            .map_err(|_| BinError::new(format!("{what}: count {n} exceeds usize")))?;
        if min_elem_bytes > 0 && n > self.remaining() / min_elem_bytes + 1 {
            return Err(BinError::new(format!(
                "{what}: count {n} exceeds remaining input ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<String, BinError> {
        let n = self.get_len(what, 1)?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| BinError::new(format!("{what}: invalid UTF-8 string")))
    }

    /// Count-prefixed raw f32 array.
    pub fn get_f32s(&mut self, what: &str) -> Result<Vec<f32>, BinError> {
        let n = self.get_len(what, 4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Count-prefixed raw f64 array.
    pub fn get_f64s(&mut self, what: &str) -> Result<Vec<f64>, BinError> {
        let n = self.get_len(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Lossless quantized array codecs
// ---------------------------------------------------------------------------

/// Encodings for [`put_f32_array`]. The encoder certifies losslessness before
/// choosing anything narrower than raw f32, so decode always reproduces the
/// original bit patterns.
const ENC_F32: u8 = 0;
const ENC_F16: u8 = 1;
const ENC_U8: u8 = 2;
const ENC_SPARSE_F32: u8 = 3;
const ENC_SPARSE_F16: u8 = 4;
const ENC_SPARSE_U8: u8 = 5;

/// A value is "zero" for sparse encoding purposes only when its bit pattern
/// is exactly +0.0 — so −0.0 and NaN are stored as explicit entries and the
/// round trip stays bit-identical.
#[inline]
fn is_pos_zero(v: f32) -> bool {
    v.to_bits() == 0
}

/// Encode an f32 slice choosing the smallest certified-lossless encoding:
/// dense raw/f16/u8, or sparse (varint index-delta + value) variants when
/// most entries are bit-exact +0.0. Layout: `varu count, u8 enc, payload`.
pub fn put_f32_array(w: &mut ByteWriter, vs: &[f32]) {
    w.put_varu(vs.len() as u64);
    if vs.is_empty() {
        w.put_u8(ENC_F32);
        return;
    }
    let all_f16 = vs.iter().all(|&v| f16_exact(v));
    let all_u8 = vs.iter().all(|&v| u8_exact(v));
    let nnz = vs.iter().filter(|&&v| !is_pos_zero(v)).count();

    // Dense payload sizes (bytes per element).
    let dense_elem: usize = if all_u8 {
        1
    } else if all_f16 {
        2
    } else {
        4
    };
    let dense_size = vs.len() * dense_elem;

    // Sparse payload: varu nnz + per-entry (varu index delta + value).
    // Index deltas are usually tiny (1-2 bytes); size them exactly.
    let sparse_elem = dense_elem;
    let sparse_size = if nnz * 2 < vs.len() {
        let mut size = varu_len(nnz as u64);
        let mut prev = 0usize;
        for (i, &v) in vs.iter().enumerate() {
            if !is_pos_zero(v) {
                size += varu_len((i - prev) as u64) + sparse_elem;
                prev = i + 1;
            }
        }
        size
    } else {
        usize::MAX
    };

    if sparse_size < dense_size {
        let enc = if all_u8 {
            ENC_SPARSE_U8
        } else if all_f16 {
            ENC_SPARSE_F16
        } else {
            ENC_SPARSE_F32
        };
        w.put_u8(enc);
        w.put_varu(nnz as u64);
        let mut prev = 0usize;
        for (i, &v) in vs.iter().enumerate() {
            if !is_pos_zero(v) {
                w.put_varu((i - prev) as u64);
                match enc {
                    ENC_SPARSE_U8 => w.put_u8(v as u8),
                    ENC_SPARSE_F16 => w.put_u16(f32_to_f16_bits(v)),
                    _ => w.put_f32(v),
                }
                prev = i + 1;
            }
        }
    } else if all_u8 {
        w.put_u8(ENC_U8);
        for &v in vs {
            w.put_u8(v as u8);
        }
    } else if all_f16 {
        w.put_u8(ENC_F16);
        for &v in vs {
            w.put_u16(f32_to_f16_bits(v));
        }
    } else {
        w.put_u8(ENC_F32);
        for &v in vs {
            w.put_f32(v);
        }
    }
}

/// Bytes a LEB128 varint of `v` occupies.
fn varu_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).div_ceil(7).max(1)
}

/// Decode an array written by [`put_f32_array`].
pub fn get_f32_array(r: &mut ByteReader<'_>, what: &str) -> Result<Vec<f32>, BinError> {
    let n = r.get_len(what, 0)?;
    let enc = r.get_u8()?;
    // Guard dense counts against the remaining input.
    let elem = match enc {
        ENC_F32 => 4,
        ENC_F16 => 2,
        ENC_U8 => 1,
        _ => 0,
    };
    if elem > 0 && n > r.remaining() / elem {
        return Err(BinError::new(format!(
            "{what}: count {n} exceeds remaining input ({} bytes)",
            r.remaining()
        )));
    }
    match enc {
        ENC_F32 => {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(r.get_f32()?);
            }
            Ok(out)
        }
        ENC_F16 => {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(f16_bits_to_f32(r.get_u16()?));
            }
            Ok(out)
        }
        ENC_U8 => {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(r.get_u8()? as f32);
            }
            Ok(out)
        }
        ENC_SPARSE_F32 | ENC_SPARSE_F16 | ENC_SPARSE_U8 => {
            let nnz = r.get_len(what, 1)?;
            if nnz > n {
                return Err(BinError::new(format!(
                    "{what}: sparse nnz {nnz} exceeds length {n}"
                )));
            }
            let mut out = vec![0.0f32; n];
            let mut idx = 0usize;
            for k in 0..nnz {
                let delta = r.get_varu()? as usize;
                idx = idx
                    .checked_add(delta)
                    .filter(|&i| i < n)
                    .ok_or_else(|| {
                        BinError::new(format!(
                            "{what}: sparse entry {k} index out of range (len {n})"
                        ))
                    })?;
                out[idx] = match enc {
                    ENC_SPARSE_U8 => r.get_u8()? as f32,
                    ENC_SPARSE_F16 => f16_bits_to_f32(r.get_u16()?),
                    _ => r.get_f32()?,
                };
                idx += 1;
            }
            Ok(out)
        }
        other => Err(BinError::new(format!(
            "{what}: unknown f32 array encoding {other}"
        ))),
    }
}

/// f64 array codec: dense raw, or sparse when most entries are bit-exact
/// +0.0 (accumulators for mostly-idle users). Layout mirrors
/// [`put_f32_array`] with encodings 0 = dense, 3 = sparse.
pub fn put_f64_array(w: &mut ByteWriter, vs: &[f64]) {
    w.put_varu(vs.len() as u64);
    let nnz = vs.iter().filter(|&&v| v.to_bits() != 0).count();
    let dense_size = vs.len() * 8;
    let sparse_size = if nnz * 2 < vs.len() {
        let mut size = varu_len(nnz as u64);
        let mut prev = 0usize;
        for (i, &v) in vs.iter().enumerate() {
            if v.to_bits() != 0 {
                size += varu_len((i - prev) as u64) + 8;
                prev = i + 1;
            }
        }
        size
    } else {
        usize::MAX
    };
    if sparse_size < dense_size {
        w.put_u8(ENC_SPARSE_F32);
        w.put_varu(nnz as u64);
        let mut prev = 0usize;
        for (i, &v) in vs.iter().enumerate() {
            if v.to_bits() != 0 {
                w.put_varu((i - prev) as u64);
                w.put_f64(v);
                prev = i + 1;
            }
        }
    } else {
        w.put_u8(ENC_F32);
        for &v in vs {
            w.put_f64(v);
        }
    }
}

/// Decode an array written by [`put_f64_array`].
pub fn get_f64_array(r: &mut ByteReader<'_>, what: &str) -> Result<Vec<f64>, BinError> {
    let n = r.get_len(what, 0)?;
    let enc = r.get_u8()?;
    match enc {
        ENC_F32 => {
            if n > r.remaining() / 8 {
                return Err(BinError::new(format!(
                    "{what}: count {n} exceeds remaining input ({} bytes)",
                    r.remaining()
                )));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(r.get_f64()?);
            }
            Ok(out)
        }
        ENC_SPARSE_F32 => {
            let nnz = r.get_len(what, 9)?;
            if nnz > n {
                return Err(BinError::new(format!(
                    "{what}: sparse nnz {nnz} exceeds length {n}"
                )));
            }
            let mut out = vec![0.0f64; n];
            let mut idx = 0usize;
            for k in 0..nnz {
                let delta = r.get_varu()? as usize;
                idx = idx
                    .checked_add(delta)
                    .filter(|&i| i < n)
                    .ok_or_else(|| {
                        BinError::new(format!(
                            "{what}: sparse entry {k} index out of range (len {n})"
                        ))
                    })?;
                out[idx] = r.get_f64()?;
                idx += 1;
            }
            Ok(out)
        }
        other => Err(BinError::new(format!(
            "{what}: unknown f64 array encoding {other}"
        ))),
    }
}

/// Count-prefixed array of usizes stored as varints.
pub fn put_usizes(w: &mut ByteWriter, vs: &[usize]) {
    w.put_varu(vs.len() as u64);
    for &v in vs {
        w.put_varu(v as u64);
    }
}

/// Decode an array written by [`put_usizes`].
pub fn get_usizes(r: &mut ByteReader<'_>, what: &str) -> Result<Vec<usize>, BinError> {
    let n = r.get_len(what, 1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.get_varu()?;
        out.push(usize::try_from(v).map_err(|_| {
            BinError::new(format!("{what}: value {v} exceeds usize"))
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn f16_roundtrip_exact_values() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            6.5,
            65504.0,
            -65504.0,
            6.103_515_6e-5,  // smallest normal half
            5.960_464_5e-8,  // smallest subnormal half
            f32::INFINITY,
            f32::NEG_INFINITY,
        ] {
            assert!(f16_exact(v), "{v} should be f16-exact");
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)).to_bits(), v.to_bits());
        }
        for v in [0.1f32, 1e-9, 1e9, 65536.0, 3.141_592_7] {
            assert!(!f16_exact(v), "{v} should not be f16-exact");
        }
        // NaN stays NaN (payload may change, which f16_exact correctly
        // reports as inexact — NaN histories fall back to raw f32).
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half value;
        // nearest-even rounds down to 1.0.
        let halfway = f32::from_bits(0x3F80_1000);
        assert_eq!(f32_to_f16_bits(halfway), 0x3C00);
        // Slightly above halfway rounds up.
        let above = f32::from_bits(0x3F80_1001);
        assert_eq!(f32_to_f16_bits(above), 0x3C01);
    }

    #[test]
    fn u8_exactness() {
        assert!(u8_exact(0.0));
        assert!(u8_exact(255.0));
        assert!(u8_exact(13.0));
        assert!(!u8_exact(-0.0));
        assert!(!u8_exact(0.5));
        assert!(!u8_exact(256.0));
        assert!(!u8_exact(-1.0));
        assert!(!u8_exact(f32::NAN));
        assert!(!u8_exact(f32::INFINITY));
    }

    #[test]
    fn writer_reader_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i32(-42);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_varu(0);
        w.put_varu(127);
        w.put_varu(128);
        w.put_varu(u64::MAX);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25);
        assert_eq!(r.get_varu().unwrap(), 0);
        assert_eq!(r.get_varu().unwrap(), 127);
        assert_eq!(r.get_varu().unwrap(), 128);
        assert_eq!(r.get_varu().unwrap(), u64::MAX);
        assert_eq!(r.get_str("s").unwrap(), "héllo");
        assert!(r.is_done());
    }

    #[test]
    fn reader_truncation_is_typed() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
        let mut r = ByteReader::new(&[0xFF; 11]);
        assert!(r.get_varu().is_err(), "over-long varint must fail");
    }

    fn roundtrip_f32(vs: &[f32]) -> Vec<f32> {
        let mut w = ByteWriter::new();
        put_f32_array(&mut w, vs);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = get_f32_array(&mut r, "t").unwrap();
        assert!(r.is_done());
        out
    }

    fn bits(vs: &[f32]) -> Vec<u32> {
        vs.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn f32_array_dense_paths_bit_identical() {
        // Raw f32 path (arbitrary floats).
        let raw = vec![0.1f32, -3.7, 1e-20, f32::NAN, f32::INFINITY, -0.0];
        assert_eq!(bits(&roundtrip_f32(&raw)), bits(&raw));
        // f16 path (halves of small integers).
        let halves: Vec<f32> = (0..64).map(|i| i as f32 * 0.5 - 8.0).collect();
        assert_eq!(bits(&roundtrip_f32(&halves)), bits(&halves));
        // u8 path (small non-negative integers).
        let small: Vec<f32> = (0..64).map(|i| (i % 13) as f32).collect();
        assert_eq!(bits(&roundtrip_f32(&small)), bits(&small));
        // Empty.
        assert!(roundtrip_f32(&[]).is_empty());
    }

    #[test]
    fn f32_array_sparse_paths_bit_identical() {
        // ~5% non-zero, values arbitrary — sparse f32.
        let mut vs = vec![0.0f32; 1000];
        for i in (0..1000).step_by(37) {
            vs[i] = 0.123 + i as f32;
        }
        assert_eq!(bits(&roundtrip_f32(&vs)), bits(&vs));
        // Sparse with a -0.0 (must be stored explicitly, not dropped).
        let mut vs = vec![0.0f32; 100];
        vs[50] = -0.0;
        vs[51] = 2.5;
        let out = roundtrip_f32(&vs);
        assert_eq!(out[50].to_bits(), (-0.0f32).to_bits());
        assert_eq!(bits(&out), bits(&vs));
        // Sparse u8 path.
        let mut vs = vec![0.0f32; 500];
        for i in (0..500).step_by(29) {
            vs[i] = ((i % 12) + 1) as f32;
        }
        assert_eq!(bits(&roundtrip_f32(&vs)), bits(&vs));
    }

    #[test]
    fn f32_array_sparse_is_smaller() {
        let mut vs = vec![0.0f32; 10_000];
        for i in (0..10_000).step_by(17) {
            vs[i] = 0.321 + i as f32;
        }
        let mut w = ByteWriter::new();
        put_f32_array(&mut w, &vs);
        assert!(
            w.len() < 10_000, // dense raw would be ~40 KB
            "sparse encoding should beat dense ({} bytes)",
            w.len()
        );
    }

    #[test]
    fn f64_array_roundtrip() {
        let dense = vec![0.1f64, -2.5, 1e300, f64::NAN];
        let mut w = ByteWriter::new();
        put_f64_array(&mut w, &dense);
        let bytes = w.into_bytes();
        let out = get_f64_array(&mut ByteReader::new(&bytes), "t").unwrap();
        let b: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        let e: Vec<u64> = dense.iter().map(|v| v.to_bits()).collect();
        assert_eq!(b, e);

        let mut sparse = vec![0.0f64; 1000];
        sparse[3] = 7.25;
        sparse[999] = -1.5;
        let mut w = ByteWriter::new();
        put_f64_array(&mut w, &sparse);
        assert!(w.len() < 100);
        let bytes = w.into_bytes();
        let out = get_f64_array(&mut ByteReader::new(&bytes), "t").unwrap();
        assert_eq!(out, sparse);
    }

    #[test]
    fn usizes_roundtrip() {
        let vs = vec![0usize, 1, 127, 128, 1 << 20];
        let mut w = ByteWriter::new();
        put_usizes(&mut w, &vs);
        let bytes = w.into_bytes();
        let out = get_usizes(&mut ByteReader::new(&bytes), "t").unwrap();
        assert_eq!(out, vs);
    }

    #[test]
    fn corrupt_arrays_are_typed_errors() {
        // Huge count with no backing bytes.
        let mut w = ByteWriter::new();
        w.put_varu(1 << 40);
        w.put_u8(ENC_F32);
        let bytes = w.into_bytes();
        assert!(get_f32_array(&mut ByteReader::new(&bytes), "t").is_err());
        // Unknown encoding.
        let mut w = ByteWriter::new();
        w.put_varu(1);
        w.put_u8(99);
        w.put_f32(1.0);
        let bytes = w.into_bytes();
        assert!(get_f32_array(&mut ByteReader::new(&bytes), "t").is_err());
        // Sparse index past the end.
        let mut w = ByteWriter::new();
        w.put_varu(4); // len
        w.put_u8(ENC_SPARSE_F32);
        w.put_varu(1); // nnz
        w.put_varu(10); // delta -> index 10 >= len 4
        w.put_f32(1.0);
        let bytes = w.into_bytes();
        assert!(get_f32_array(&mut ByteReader::new(&bytes), "t").is_err());
    }
}
