//! Drift and health monitoring.
//!
//! * [`QuantileSketch`] — a small streaming p50/p90/p99 estimator (exact up
//!   to 64 observations, P² markers beyond) used to sketch each day's
//!   per-aspect reconstruction-error distribution in O(1) memory.
//! * [`DriftMonitor`] — compares today's per-aspect score quantiles against
//!   the median of a trailing window and raises
//!   [`HealthEvent::ScoreDrift`] when a quantile moves by more than the
//!   configured ratio, the signature of a baseline shift or a broken aspect.
//! * [`HealthBoard`] — the process-wide operational state behind the
//!   `/healthz` endpoint: per-shard live/quarantined status, last ingested
//!   day, checkpoint age, days behind the feed, and the recent
//!   [`HealthEvent`] ring. Every reported event also lands in the trace
//!   event stream and (at default verbosity) on stderr.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

/// The quantiles tracked by [`QuantileSketch`], in order.
pub const TRACKED_QUANTILES: [f64; 3] = [0.50, 0.90, 0.99];

/// Labels matching [`TRACKED_QUANTILES`].
pub const QUANTILE_LABELS: [&str; 3] = ["p50", "p90", "p99"];

/// Health events retained on the board for `/healthz`.
const BOARD_EVENT_CAPACITY: usize = 256;

/// One P² (piecewise-parabolic) marker set estimating a single quantile in
/// O(1) memory (Jain & Chlamtac, 1985). Fed only once the owning sketch has
/// seen more than [`QuantileSketch::EXACT_CAPACITY`] observations.
#[derive(Debug, Clone)]
struct P2 {
    p: f64,
    n: u64,
    q: [f64; 5],
    pos: [f64; 5],
}

impl P2 {
    fn new(p: f64) -> Self {
        P2 { p, n: 0, q: [0.0; 5], pos: [1.0, 2.0, 3.0, 4.0, 5.0] }
    }

    fn observe(&mut self, x: f64) {
        if self.n < 5 {
            self.q[self.n as usize] = x;
            self.n += 1;
            if self.n == 5 {
                self.q.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };
        for pos in self.pos.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        self.n += 1;

        let dp = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for i in 1..4 {
            let desired = 1.0 + (self.n - 1) as f64 * dp[i];
            let d = desired - self.pos[i];
            let ahead = self.pos[i + 1] - self.pos[i];
            let behind = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0) {
                let d = d.signum();
                let parabolic = self.q[i]
                    + d / (self.pos[i + 1] - self.pos[i - 1])
                        * ((self.pos[i] - self.pos[i - 1] + d)
                            * (self.q[i + 1] - self.q[i])
                            / (self.pos[i + 1] - self.pos[i])
                            + (self.pos[i + 1] - self.pos[i] - d)
                                * (self.q[i] - self.q[i - 1])
                                / (self.pos[i] - self.pos[i - 1]));
                if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    self.q[i] = parabolic;
                } else {
                    // Parabolic prediction left the bracket: linear step.
                    let j = (i as f64 + d) as usize;
                    self.q[i] += d * (self.q[j] - self.q[i]) / (self.pos[j] - self.pos[i]);
                }
                self.pos[i] += d;
            }
        }
    }

    fn value(&self) -> f64 {
        self.q[2]
    }
}

/// A streaming quantile estimator for p50/p90/p99.
///
/// Exact (sorted buffer with linear interpolation) while it has seen at most
/// [`QuantileSketch::EXACT_CAPACITY`] values — which covers per-day score
/// vectors of small orgs and keeps tests deterministic — then hands the
/// buffered history to three P² marker sets and stays O(1) from there.
#[derive(Debug, Clone, Default)]
pub struct QuantileSketch {
    buffer: Vec<f64>,
    p2: Option<Box<[P2; 3]>>,
    count: u64,
    sum: f64,
}

impl QuantileSketch {
    /// Observations kept exactly before switching to P² markers.
    pub const EXACT_CAPACITY: usize = 64;

    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Observations folded in so far (non-finite values are skipped).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observed values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds one value in; NaN/inf (e.g. scores of quarantined users) are
    /// ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        if let Some(p2) = self.p2.as_mut() {
            for marker in p2.iter_mut() {
                marker.observe(x);
            }
            return;
        }
        self.buffer.push(x);
        if self.buffer.len() > Self::EXACT_CAPACITY {
            let mut p2 = Box::new([
                P2::new(TRACKED_QUANTILES[0]),
                P2::new(TRACKED_QUANTILES[1]),
                P2::new(TRACKED_QUANTILES[2]),
            ]);
            for &v in &self.buffer {
                for marker in p2.iter_mut() {
                    marker.observe(v);
                }
            }
            self.p2 = Some(p2);
            self.buffer = Vec::new();
        }
    }

    /// `[p50, p90, p99]`, or `None` before the first (finite) observation.
    pub fn quantiles(&self) -> Option<[f64; 3]> {
        if self.count == 0 {
            return None;
        }
        if let Some(p2) = &self.p2 {
            return Some([p2[0].value(), p2[1].value(), p2[2].value()]);
        }
        let mut sorted = self.buffer.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(TRACKED_QUANTILES.map(|p| {
            let rank = p * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }))
    }
}

/// Thresholds for [`DriftMonitor`] and the shard-lag heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Trailing days of per-aspect quantiles kept as the baseline.
    pub window: usize,
    /// Scored days required in the window before drift is evaluated.
    pub min_days: usize,
    /// A quantile moving above `baseline * ratio` (or below
    /// `baseline / ratio`) raises [`HealthEvent::ScoreDrift`].
    pub ratio: f64,
    /// A shard whose per-day ingest time exceeds `lag_ratio` times the
    /// median across live shards raises [`HealthEvent::ShardLagging`]
    /// (combined with [`DriftConfig::lag_min_ms`]).
    #[serde(default = "default_lag_ratio")]
    pub lag_ratio: f64,
    /// Absolute slack in milliseconds a shard must also exceed beyond the
    /// median before it counts as lagging — keeps sub-millisecond jitter on
    /// tiny orgs from raising events.
    #[serde(default = "default_lag_min_ms")]
    pub lag_min_ms: f64,
}

fn default_lag_ratio() -> f64 {
    4.0
}

fn default_lag_min_ms() -> f64 {
    25.0
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 14,
            min_days: 7,
            ratio: 2.0,
            lag_ratio: default_lag_ratio(),
            lag_min_ms: default_lag_min_ms(),
        }
    }
}

/// Per-aspect rolling score-distribution drift detector.
///
/// Feed it each scored day's per-user reconstruction errors (one slice per
/// aspect); it sketches the day's p50/p90/p99, publishes them as
/// `engine/score_quantile{aspect=…,q=…}` gauges, and compares them against
/// the median of the trailing window.
/// Serializable so checkpoints can carry the trailing window: a resumed
/// stream then raises the same drift events an uninterrupted one would.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftMonitor {
    aspects: Vec<String>,
    cfg: DriftConfig,
    /// Per aspect: trailing window of daily `[p50, p90, p99]`.
    windows: Vec<VecDeque<[f64; 3]>>,
}

impl DriftMonitor {
    /// A monitor for the named aspects.
    pub fn new(aspects: Vec<String>, cfg: DriftConfig) -> Self {
        let windows = vec![VecDeque::with_capacity(cfg.window + 1); aspects.len()];
        DriftMonitor { aspects, cfg, windows }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Folds one scored day in. `scores_per_aspect[a]` holds every user's
    /// score for aspect `a` on `day` (NaNs — quarantined users — are
    /// skipped). Returns the drift events raised by this day, at most one
    /// per aspect (the quantile with the worst ratio).
    pub fn observe_day(&mut self, day: &str, scores_per_aspect: &[&[f32]]) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        for (a, scores) in scores_per_aspect.iter().enumerate() {
            if a >= self.aspects.len() {
                break;
            }
            let mut sketch = QuantileSketch::new();
            for &s in scores.iter() {
                sketch.observe(s as f64);
            }
            let Some(today) = sketch.quantiles() else {
                continue; // nothing finite today (e.g. all shards quarantined)
            };
            let aspect = &self.aspects[a];
            for (q, label) in QUANTILE_LABELS.iter().enumerate() {
                crate::registry::global()
                    .gauge_with(
                        "engine/score_quantile",
                        &[("aspect", aspect.as_str()), ("q", *label)],
                    )
                    .set(today[q]);
            }

            let window = &mut self.windows[a];
            if window.len() >= self.cfg.min_days {
                let mut worst: Option<(usize, f64, f64)> = None;
                for q in 0..3 {
                    let mut trailing: Vec<f64> = window.iter().map(|d| d[q]).collect();
                    trailing
                        .sort_by(|a, b| a.partial_cmp(b).expect("finite quantiles"));
                    let baseline = trailing[trailing.len() / 2].max(1e-9);
                    let ratio = (today[q].max(1e-9) / baseline).max(baseline / today[q].max(1e-9));
                    if ratio > self.cfg.ratio
                        && worst.map(|(_, _, w)| ratio > w).unwrap_or(true)
                    {
                        worst = Some((q, baseline, ratio));
                    }
                }
                if let Some((q, baseline, ratio)) = worst {
                    events.push(HealthEvent::ScoreDrift {
                        aspect: aspect.clone(),
                        day: day.to_string(),
                        quantile: QUANTILE_LABELS[q].to_string(),
                        today: today[q],
                        baseline,
                        ratio,
                    });
                }
            }

            window.push_back(today);
            if window.len() > self.cfg.window {
                window.pop_front();
            }
        }
        events
    }
}

/// A typed operational event surfaced on `/healthz`, in the trace event
/// stream, and as a stderr warning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum HealthEvent {
    /// A day's score-quantile moved beyond the drift threshold.
    ScoreDrift {
        /// Behavior aspect whose distribution moved.
        aspect: String,
        /// Scored day that triggered the event.
        day: String,
        /// Which quantile moved (`p50`/`p90`/`p99`).
        quantile: String,
        /// Today's value of that quantile.
        today: f64,
        /// Median of the trailing window.
        baseline: f64,
        /// `max(today/baseline, baseline/today)`.
        ratio: f64,
    },
    /// A shard failed checkpoint restore and was quarantined.
    ShardQuarantined {
        /// Shard index.
        shard: usize,
        /// The restore error.
        reason: String,
    },
    /// One shard's ingest time is far above its peers'.
    ShardLagging {
        /// Shard index.
        shard: usize,
        /// Day on which the lag was observed.
        day: String,
        /// The lagging shard's phase time in milliseconds.
        shard_ms: f64,
        /// Median phase time across live shards.
        median_ms: f64,
    },
    /// The last written checkpoint is falling behind the stream.
    CheckpointStale {
        /// Ingested days since the checkpoint was written.
        age_days: i64,
        /// Day the checkpoint covers up to.
        last_day: String,
    },
}

impl HealthEvent {
    /// Short kind name (`score_drift`, `shard_quarantined`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            HealthEvent::ScoreDrift { .. } => "score_drift",
            HealthEvent::ShardQuarantined { .. } => "shard_quarantined",
            HealthEvent::ShardLagging { .. } => "shard_lagging",
            HealthEvent::CheckpointStale { .. } => "checkpoint_stale",
        }
    }
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthEvent::ScoreDrift { aspect, day, quantile, today, baseline, ratio } => {
                write!(
                    f,
                    "score drift: aspect {aspect} {quantile} moved {ratio:.2}x on {day} \
                     (today {today:.6}, baseline {baseline:.6})"
                )
            }
            HealthEvent::ShardQuarantined { shard, reason } => {
                write!(f, "shard {shard} quarantined: {reason}")
            }
            HealthEvent::ShardLagging { shard, day, shard_ms, median_ms } => {
                write!(
                    f,
                    "shard {shard} lagging on {day}: {shard_ms:.1} ms vs median {median_ms:.1} ms"
                )
            }
            HealthEvent::CheckpointStale { age_days, last_day } => {
                write!(f, "checkpoint stale: {age_days} days behind (covers up to {last_day})")
            }
        }
    }
}

/// One shard's status on the board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Users assigned to the shard.
    pub users: usize,
    /// `false` when the shard is quarantined.
    pub live: bool,
    /// Quarantine reason, when not live.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// One health event plus the time it was reported.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthEventRecord {
    /// Milliseconds since process start.
    pub t_ms: f64,
    /// The event.
    pub event: HealthEvent,
}

/// Intraday open-day progress: how much of the still-open day the stream
/// has absorbed, surfaced on `/healthz` between sub-day flushes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenDayStatus {
    /// The day being accumulated.
    pub day: String,
    /// Events absorbed into the open day so far.
    pub events: u64,
    /// Sub-day flushes absorbed so far.
    pub flushes: u64,
}

#[derive(Debug, Default, Clone, Serialize)]
struct BoardState {
    shards: Vec<ShardStatus>,
    last_ingested_day: Option<String>,
    last_scored_day: Option<String>,
    open_day: Option<OpenDayStatus>,
    /// When the current open day was first reported, in process ms — the
    /// basis of the `acobe_open_day_age_seconds` self-metric.
    open_day_since_ms: Option<f64>,
    days_behind: Option<i64>,
    checkpoint_day: Option<String>,
    checkpoint_age_days: Option<i64>,
    checkpoint_bytes: Option<u64>,
    checkpoint_format: Option<u32>,
    checkpoint_kind: Option<String>,
    mem: Option<crate::mem::MemReport>,
    events: VecDeque<HealthEventRecord>,
}

/// The process-wide operational state served at `/healthz`.
#[derive(Debug, Default)]
pub struct HealthBoard {
    state: Mutex<BoardState>,
}

impl HealthBoard {
    /// Replaces the per-shard status block.
    pub fn set_shards(&self, shards: Vec<ShardStatus>) {
        self.state.lock().shards = shards;
    }

    /// Notes the most recently ingested day.
    pub fn note_ingested(&self, day: &str) {
        self.state.lock().last_ingested_day = Some(day.to_string());
    }

    /// Notes the most recently scored day.
    pub fn note_scored(&self, day: &str) {
        self.state.lock().last_scored_day = Some(day.to_string());
    }

    /// Notes the intraday open day's progress after a sub-day flush.
    pub fn set_open_day(&self, day: &str, events: u64, flushes: u64) {
        let mut state = self.state.lock();
        let same_day = state.open_day.as_ref().is_some_and(|o| o.day == day);
        if !same_day {
            state.open_day_since_ms =
                Some(crate::progress::process_start().elapsed().as_secs_f64() * 1e3);
        }
        state.open_day = Some(OpenDayStatus { day: day.to_string(), events, flushes });
    }

    /// Clears the open-day block when the day closes.
    pub fn clear_open_day(&self) {
        let mut state = self.state.lock();
        state.open_day = None;
        state.open_day_since_ms = None;
        crate::gauge("acobe_open_day_age_seconds").set(0.0);
    }

    /// Publishes the `acobe_open_day_age_seconds` gauge: how long the
    /// current open day has been accumulating (0 when no day is open).
    /// Called on every `/metrics` scrape via
    /// [`crate::proc::refresh_process_metrics`].
    pub fn refresh_open_day_age(&self) {
        let since = self.state.lock().open_day_since_ms;
        let age = since.map_or(0.0, |ms| {
            (crate::progress::process_start().elapsed().as_secs_f64() * 1e3 - ms) / 1e3
        });
        crate::gauge("acobe_open_day_age_seconds").set(age.max(0.0));
    }

    /// Replaces the memory-accounting block surfaced in `/healthz` (see
    /// [`crate::mem::MemReport`]).
    pub fn set_mem(&self, report: crate::mem::MemReport) {
        self.state.lock().mem = Some(report);
    }

    /// Sets how many days the engine trails the end of the feed.
    pub fn set_days_behind(&self, days: i64) {
        self.state.lock().days_behind = Some(days);
    }

    /// Notes the day the newest checkpoint covers up to and its age in
    /// ingested days.
    pub fn set_checkpoint(&self, day: &str, age_days: i64) {
        let mut state = self.state.lock();
        state.checkpoint_day = Some(day.to_string());
        state.checkpoint_age_days = Some(age_days);
    }

    /// Notes the size, on-disk format version, and kind (`full` or `delta`)
    /// of the most recently written checkpoint artifact.
    pub fn set_checkpoint_artifact(&self, bytes: u64, format_version: u32, kind: &str) {
        let mut state = self.state.lock();
        state.checkpoint_bytes = Some(bytes);
        state.checkpoint_format = Some(format_version);
        state.checkpoint_kind = Some(kind.to_string());
    }

    /// Reports a health event: appends it to the board's bounded ring, the
    /// trace event stream, and (at default verbosity) stderr.
    pub fn report(&self, event: HealthEvent) {
        let fields = vec![("detail".to_string(), event.to_string())];
        crate::event::record(
            crate::event::EventKind::Health,
            event.kind(),
            crate::span::current_span_id(),
            None,
            fields,
        );
        crate::progress!("health: {event}");
        let mut state = self.state.lock();
        if state.events.len() >= BOARD_EVENT_CAPACITY {
            state.events.pop_front();
        }
        let t_ms = crate::progress::process_start().elapsed().as_secs_f64() * 1e3;
        state.events.push_back(HealthEventRecord { t_ms, event });
    }

    /// The most recent health events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<HealthEventRecord> {
        let state = self.state.lock();
        let skip = state.events.len().saturating_sub(n);
        state.events.iter().skip(skip).cloned().collect()
    }

    /// Clears the board (tests and benches).
    pub fn reset(&self) {
        *self.state.lock() = BoardState::default();
    }

    /// The `/healthz` JSON document: overall status (`ok` unless a shard is
    /// quarantined), shard table, stream position, checkpoint age, and the
    /// recent event ring.
    pub fn healthz_json(&self) -> String {
        #[derive(Serialize)]
        struct Healthz<'a> {
            status: &'a str,
            shards: &'a [ShardStatus],
            last_ingested_day: &'a Option<String>,
            last_scored_day: &'a Option<String>,
            open_day: &'a Option<OpenDayStatus>,
            days_behind: &'a Option<i64>,
            checkpoint_day: &'a Option<String>,
            checkpoint_age_days: &'a Option<i64>,
            checkpoint_bytes: &'a Option<u64>,
            checkpoint_format: &'a Option<u32>,
            checkpoint_kind: &'a Option<String>,
            #[serde(skip_serializing_if = "Option::is_none")]
            mem: Option<MemBlock<'a>>,
            events: Vec<&'a HealthEventRecord>,
        }
        #[derive(Serialize)]
        struct MemBlock<'a> {
            total_bytes: u64,
            entries: &'a [crate::mem::MemEntry],
        }
        let state = self.state.lock();
        let status = if state.shards.iter().any(|s| !s.live) { "degraded" } else { "ok" };
        let doc = Healthz {
            status,
            shards: &state.shards,
            last_ingested_day: &state.last_ingested_day,
            last_scored_day: &state.last_scored_day,
            open_day: &state.open_day,
            days_behind: &state.days_behind,
            checkpoint_day: &state.checkpoint_day,
            checkpoint_age_days: &state.checkpoint_age_days,
            checkpoint_bytes: &state.checkpoint_bytes,
            checkpoint_format: &state.checkpoint_format,
            checkpoint_kind: &state.checkpoint_kind,
            mem: state
                .mem
                .as_ref()
                .map(|m| MemBlock { total_bytes: m.total(), entries: &m.entries }),
            events: state.events.iter().collect(),
        };
        serde_json::to_string_pretty(&doc).expect("healthz serializes")
    }
}

/// The process-wide [`HealthBoard`] behind `/healthz`.
pub fn board() -> &'static HealthBoard {
    static BOARD: OnceLock<HealthBoard> = OnceLock::new();
    BOARD.get_or_init(HealthBoard::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = p * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }

    #[test]
    fn sketch_is_exact_for_small_samples() {
        let mut sketch = QuantileSketch::new();
        let values = [5.0, 1.0, 9.0, 3.0, 7.0, f64::NAN];
        for v in values {
            sketch.observe(v);
        }
        assert_eq!(sketch.count(), 5);
        let [p50, p90, p99] = sketch.quantiles().unwrap();
        let sorted = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(p50, exact_quantile(&sorted, 0.5));
        assert_eq!(p90, exact_quantile(&sorted, 0.9));
        assert_eq!(p99, exact_quantile(&sorted, 0.99));
    }

    #[test]
    fn sketch_tracks_quantiles_of_large_streams() {
        // Deterministic pseudo-uniform stream on [0, 1000).
        let mut sketch = QuantileSketch::new();
        let mut values = Vec::new();
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 11) as f64 / (1u64 << 53) as f64 * 1000.0;
            sketch.observe(v);
            values.push(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got = sketch.quantiles().unwrap();
        for (q, &p) in TRACKED_QUANTILES.iter().enumerate() {
            let truth = exact_quantile(&values, p);
            let err = (got[q] - truth).abs();
            assert!(
                err < 25.0,
                "quantile p{p}: sketch {} vs exact {truth} (err {err})",
                got[q]
            );
        }
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let mut sketch = QuantileSketch::new();
        assert!(sketch.quantiles().is_none());
        sketch.observe(f64::NAN);
        assert!(sketch.quantiles().is_none());
    }

    #[test]
    fn drift_monitor_raises_on_scale_shift() {
        let cfg = DriftConfig { window: 8, min_days: 3, ratio: 2.0, ..DriftConfig::default() };
        let mut monitor = DriftMonitor::new(vec!["http".into(), "device".into()], cfg);
        let normal: Vec<f32> = (0..20).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
        for day in 0..5 {
            let events = monitor.observe_day(
                &format!("2020-01-{:02}", day + 1),
                &[normal.as_slice(), normal.as_slice()],
            );
            assert!(events.is_empty(), "no drift on steady days: {events:?}");
        }
        // Scale every http score 10x; device stays put.
        let shifted: Vec<f32> = normal.iter().map(|v| v * 10.0).collect();
        let events =
            monitor.observe_day("2020-01-06", &[shifted.as_slice(), normal.as_slice()]);
        assert_eq!(events.len(), 1, "{events:?}");
        match &events[0] {
            HealthEvent::ScoreDrift { aspect, ratio, day, .. } => {
                assert_eq!(aspect, "http");
                assert_eq!(day, "2020-01-06");
                assert!(*ratio > 5.0, "ratio {ratio}");
            }
            other => panic!("expected ScoreDrift, got {other:?}"),
        }
    }

    #[test]
    fn drift_monitor_waits_for_min_days_and_skips_nan_days() {
        let cfg = DriftConfig { window: 4, min_days: 3, ratio: 1.5, ..DriftConfig::default() };
        let mut monitor = DriftMonitor::new(vec!["a".into()], cfg);
        let nan_day = vec![f32::NAN; 8];
        assert!(monitor.observe_day("d0", &[nan_day.as_slice()]).is_empty());
        let quiet = vec![1.0f32; 8];
        let loud = vec![100.0f32; 8];
        // Too little history: the loud day only seeds the window.
        assert!(monitor.observe_day("d1", &[quiet.as_slice()]).is_empty());
        assert!(monitor.observe_day("d2", &[loud.as_slice()]).is_empty());
        assert!(monitor.observe_day("d3", &[quiet.as_slice()]).is_empty());
        // Window now holds [quiet, loud, quiet]; median is quiet → drift.
        let events = monitor.observe_day("d4", &[loud.as_slice()]);
        assert_eq!(events.len(), 1, "{events:?}");
    }

    #[test]
    fn health_events_serialize_with_kind_tags() {
        let event = HealthEvent::ShardQuarantined { shard: 3, reason: "bad manifest".into() };
        let json = serde_json::to_string(&event).unwrap();
        assert!(json.contains("\"kind\":\"shard_quarantined\""), "{json}");
        let back: HealthEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
        assert_eq!(event.kind(), "shard_quarantined");
        assert!(event.to_string().contains("shard 3"));
    }

    #[test]
    fn board_tracks_shards_and_serves_healthz() {
        let board = HealthBoard::default();
        board.set_shards(vec![
            ShardStatus { shard: 0, users: 10, live: true, error: None },
            ShardStatus { shard: 1, users: 12, live: false, error: Some("corrupt".into()) },
        ]);
        board.note_ingested("2020-02-01");
        board.set_open_day("2020-02-02", 1234, 3);
        board.set_days_behind(3);
        board.set_checkpoint("2020-01-20", 12);
        board.set_checkpoint_artifact(4096, 3, "delta");
        board.report(HealthEvent::CheckpointStale {
            age_days: 12,
            last_day: "2020-01-20".into(),
        });
        let json = board.healthz_json();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc["status"], "degraded");
        assert_eq!(doc["shards"][1]["live"], false);
        assert_eq!(doc["shards"][1]["error"], "corrupt");
        assert_eq!(doc["last_ingested_day"], "2020-02-01");
        assert_eq!(doc["open_day"]["day"], "2020-02-02");
        assert_eq!(doc["open_day"]["events"], 1234);
        assert_eq!(doc["open_day"]["flushes"], 3);
        assert_eq!(doc["days_behind"], 3);
        board.clear_open_day();
        let doc: serde_json::Value =
            serde_json::from_str(&board.healthz_json()).unwrap();
        assert!(doc["open_day"].is_null());
        assert_eq!(doc["checkpoint_age_days"], 12);
        assert_eq!(doc["checkpoint_bytes"], 4096);
        assert_eq!(doc["checkpoint_format"], 3);
        assert_eq!(doc["checkpoint_kind"], "delta");
        assert_eq!(doc["events"][0]["event"]["kind"], "checkpoint_stale");
        board.set_shards(vec![ShardStatus { shard: 0, users: 22, live: true, error: None }]);
        let doc: serde_json::Value =
            serde_json::from_str(&board.healthz_json()).unwrap();
        assert_eq!(doc["status"], "ok");
    }
}
