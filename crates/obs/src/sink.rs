//! Output sinks: serializable metric records (JSON lines), the
//! human-readable summary table, and the incremental `--metrics-out` flush.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// A sorted `(key, value)` label set attached to one metric series.
///
/// The empty set is the unlabeled series; records serialize it as an absent
/// field so pre-label JSONL output (and `fig6_results.json` stage timings)
/// round-trip unchanged.
pub type Labels = Vec<(String, String)>;

/// One histogram bucket in a [`MetricRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound; `None` marks the overflow bucket.
    pub le: Option<f64>,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// One exported metric. Serialized as JSON with a `kind` tag, one record per
/// line in the `--metrics-out` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum MetricRecord {
    /// Aggregated wall time of one span path.
    Span {
        /// Full `parent/child` span path.
        name: String,
        /// Completed spans on this path.
        count: u64,
        /// Summed wall time in milliseconds.
        total_ms: f64,
        /// Mean wall time per span in milliseconds.
        mean_ms: f64,
        /// Shortest span in milliseconds.
        min_ms: f64,
        /// Longest span in milliseconds.
        max_ms: f64,
    },
    /// A monotonic counter.
    Counter {
        /// Metric family name.
        name: String,
        /// Label set distinguishing this series within the family.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        labels: Labels,
        /// Current value.
        value: u64,
    },
    /// A latest-value gauge.
    Gauge {
        /// Metric family name.
        name: String,
        /// Label set distinguishing this series within the family.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        labels: Labels,
        /// Current value.
        value: f64,
    },
    /// A fixed-bucket histogram.
    Histogram {
        /// Metric family name.
        name: String,
        /// Label set distinguishing this series within the family.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        labels: Labels,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: f64,
        /// Smallest observed value.
        min: f64,
        /// Largest observed value.
        max: f64,
        /// Bucket counts, ending with the overflow bucket.
        buckets: Vec<HistogramBucket>,
    },
}

impl MetricRecord {
    /// The metric's family name, independent of kind.
    pub fn name(&self) -> &str {
        match self {
            MetricRecord::Span { name, .. }
            | MetricRecord::Counter { name, .. }
            | MetricRecord::Gauge { name, .. }
            | MetricRecord::Histogram { name, .. } => name,
        }
    }

    /// The record's label set; spans carry none (their path is the identity).
    pub fn labels(&self) -> &[(String, String)] {
        match self {
            MetricRecord::Span { .. } => &[],
            MetricRecord::Counter { labels, .. }
            | MetricRecord::Gauge { labels, .. }
            | MetricRecord::Histogram { labels, .. } => labels,
        }
    }

    /// `name{k=v,...}` for labeled series, bare `name` otherwise.
    pub fn display_name(&self) -> String {
        render_series_name(self.name(), self.labels())
    }
}

/// Renders `name{k=v,...}` (bare `name` for the empty label set) — the series
/// identity used in summary tables and tests.
pub fn render_series_name(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", parts.join(","))
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

/// Renders a snapshot as the stderr summary table printed by the CLI on
/// completion (`acobe detect -v`, `acobe enterprise -v`).
pub fn render_summary(records: &[MetricRecord]) -> String {
    let mut out = String::new();
    let names: Vec<String> = records.iter().map(|r| r.display_name()).collect();
    let name_width = names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);

    let spans: Vec<&MetricRecord> = records
        .iter()
        .filter(|r| matches!(r, MetricRecord::Span { .. }))
        .collect();
    if !spans.is_empty() {
        out.push_str(&format!(
            "stage timings\n  {} {:>7} {:>12} {:>12} {:>12}\n",
            pad("span", name_width),
            "count",
            "total(ms)",
            "mean(ms)",
            "max(ms)"
        ));
        for record in &spans {
            if let MetricRecord::Span { name, count, total_ms, mean_ms, max_ms, .. } = record {
                out.push_str(&format!(
                    "  {} {count:>7} {total_ms:>12.2} {mean_ms:>12.2} {max_ms:>12.2}\n",
                    pad(name, name_width)
                ));
            }
        }
    }

    let counters: Vec<&MetricRecord> = records
        .iter()
        .filter(|r| matches!(r, MetricRecord::Counter { .. } | MetricRecord::Gauge { .. }))
        .collect();
    if !counters.is_empty() {
        out.push_str("counters & gauges\n");
        for record in &counters {
            match record {
                MetricRecord::Counter { value, .. } => {
                    out.push_str(&format!("  {} {value}\n", pad(&record.display_name(), name_width)));
                }
                MetricRecord::Gauge { value, .. } => {
                    out.push_str(&format!("  {} {value}\n", pad(&record.display_name(), name_width)));
                }
                _ => {}
            }
        }
    }

    let hists: Vec<&MetricRecord> = records
        .iter()
        .filter(|r| matches!(r, MetricRecord::Histogram { .. }))
        .collect();
    if !hists.is_empty() {
        out.push_str(&format!(
            "histograms\n  {} {:>7} {:>12} {:>12} {:>12}\n",
            pad("name", name_width),
            "count",
            "mean",
            "min",
            "max"
        ));
        for record in &hists {
            if let MetricRecord::Histogram { count, sum, min, max, .. } = record {
                let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                out.push_str(&format!(
                    "  {} {count:>7} {mean:>12.2} {min:>12.2} {max:>12.2}\n",
                    pad(&record.display_name(), name_width)
                ));
            }
        }
    }
    out
}

fn metrics_path_slot() -> &'static Mutex<Option<PathBuf>> {
    static SLOT: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Sets (or clears) the process-wide `--metrics-out` path used by
/// [`flush_metrics`]. Long-running commands call `flush_metrics` after every
/// ingested day so a killed run still leaves a fresh snapshot on disk.
pub fn set_metrics_path(path: Option<&Path>) {
    *metrics_path_slot().lock() = path.map(Path::to_path_buf);
}

/// The currently configured `--metrics-out` path, if any.
pub fn metrics_path() -> Option<PathBuf> {
    metrics_path_slot().lock().clone()
}

/// Writes the global registry's JSONL snapshot to the configured metrics
/// path, atomically (tmp file + rename), returning `false` when no path is
/// set. A scrape or a `kill -9` therefore never sees a half-written file.
pub fn flush_metrics() -> std::io::Result<bool> {
    let Some(path) = metrics_path() else {
        return Ok(false);
    };
    let jsonl = crate::registry::global().to_jsonl();
    write_atomic(&path, jsonl.as_bytes())?;
    Ok(true)
}

/// Writes `bytes` to `path` via a sibling tmp file and an atomic rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<MetricRecord> {
        vec![
            MetricRecord::Span {
                name: "fit/train(aspect=device)".into(),
                count: 3,
                total_ms: 120.0,
                mean_ms: 40.0,
                min_ms: 30.0,
                max_ms: 55.0,
            },
            MetricRecord::Counter { name: "events_parsed".into(), labels: vec![], value: 991 },
            MetricRecord::Gauge {
                name: "shard_users".into(),
                labels: vec![("shard".into(), "2".into())],
                value: 24.0,
            },
            MetricRecord::Histogram {
                name: "epoch_ms".into(),
                labels: vec![("aspect".into(), "http".into())],
                count: 2,
                sum: 12.0,
                min: 5.0,
                max: 7.0,
                buckets: vec![
                    HistogramBucket { le: Some(10.0), count: 2 },
                    HistogramBucket { le: None, count: 0 },
                ],
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_serde_json() {
        for record in sample_records() {
            let line = serde_json::to_string(&record).unwrap();
            let back: MetricRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, record, "line: {line}");
        }
    }

    #[test]
    fn kind_tags_are_snake_case() {
        let line = serde_json::to_string(&sample_records()[0]).unwrap();
        assert!(line.contains("\"kind\":\"span\""), "{line}");
        let line = serde_json::to_string(&sample_records()[3]).unwrap();
        assert!(line.contains("\"kind\":\"histogram\""), "{line}");
    }

    #[test]
    fn unlabeled_records_serialize_without_labels_field() {
        let line = serde_json::to_string(&sample_records()[1]).unwrap();
        assert!(!line.contains("labels"), "{line}");
        // Pre-label JSONL (no `labels` field at all) still deserializes.
        let legacy = r#"{"kind":"counter","name":"events_parsed","value":991}"#;
        let back: MetricRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(back, sample_records()[1]);
    }

    #[test]
    fn summary_mentions_every_metric() {
        let text = render_summary(&sample_records());
        for record in sample_records() {
            assert!(
                text.contains(&record.display_name()),
                "missing {}:\n{text}",
                record.display_name()
            );
        }
        assert!(text.contains("shard_users{shard=2}"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_summary(&[]), "");
    }

    #[test]
    fn write_atomic_replaces_existing_file() {
        let dir = std::env::temp_dir().join("acobe_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        std::fs::remove_dir_all(&dir).ok();
    }
}
