//! Output sinks: serializable metric records (JSON lines) and the
//! human-readable summary table.

use serde::{Deserialize, Serialize};

/// One histogram bucket in a [`MetricRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound; `None` marks the overflow bucket.
    pub le: Option<f64>,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// One exported metric. Serialized as JSON with a `kind` tag, one record per
/// line in the `--metrics-out` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum MetricRecord {
    /// Aggregated wall time of one span path.
    Span {
        /// Full `parent/child` span path.
        name: String,
        /// Completed spans on this path.
        count: u64,
        /// Summed wall time in milliseconds.
        total_ms: f64,
        /// Mean wall time per span in milliseconds.
        mean_ms: f64,
        /// Shortest span in milliseconds.
        min_ms: f64,
        /// Longest span in milliseconds.
        max_ms: f64,
    },
    /// A monotonic counter.
    Counter {
        /// Metric name.
        name: String,
        /// Current value.
        value: u64,
    },
    /// A latest-value gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// A fixed-bucket histogram.
    Histogram {
        /// Metric name.
        name: String,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: f64,
        /// Smallest observed value.
        min: f64,
        /// Largest observed value.
        max: f64,
        /// Bucket counts, ending with the overflow bucket.
        buckets: Vec<HistogramBucket>,
    },
}

impl MetricRecord {
    /// The metric's name, independent of kind.
    pub fn name(&self) -> &str {
        match self {
            MetricRecord::Span { name, .. }
            | MetricRecord::Counter { name, .. }
            | MetricRecord::Gauge { name, .. }
            | MetricRecord::Histogram { name, .. } => name,
        }
    }
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

/// Renders a snapshot as the stderr summary table printed by the CLI on
/// completion (`acobe detect -v`, `acobe enterprise -v`).
pub fn render_summary(records: &[MetricRecord]) -> String {
    let mut out = String::new();
    let name_width = records
        .iter()
        .map(|r| r.name().len())
        .max()
        .unwrap_or(4)
        .max(4);

    let spans: Vec<&MetricRecord> = records
        .iter()
        .filter(|r| matches!(r, MetricRecord::Span { .. }))
        .collect();
    if !spans.is_empty() {
        out.push_str(&format!(
            "stage timings\n  {} {:>7} {:>12} {:>12} {:>12}\n",
            pad("span", name_width),
            "count",
            "total(ms)",
            "mean(ms)",
            "max(ms)"
        ));
        for record in &spans {
            if let MetricRecord::Span { name, count, total_ms, mean_ms, max_ms, .. } = record {
                out.push_str(&format!(
                    "  {} {count:>7} {total_ms:>12.2} {mean_ms:>12.2} {max_ms:>12.2}\n",
                    pad(name, name_width)
                ));
            }
        }
    }

    let counters: Vec<&MetricRecord> = records
        .iter()
        .filter(|r| matches!(r, MetricRecord::Counter { .. } | MetricRecord::Gauge { .. }))
        .collect();
    if !counters.is_empty() {
        out.push_str("counters & gauges\n");
        for record in &counters {
            match record {
                MetricRecord::Counter { name, value } => {
                    out.push_str(&format!("  {} {value}\n", pad(name, name_width)));
                }
                MetricRecord::Gauge { name, value } => {
                    out.push_str(&format!("  {} {value}\n", pad(name, name_width)));
                }
                _ => {}
            }
        }
    }

    let hists: Vec<&MetricRecord> = records
        .iter()
        .filter(|r| matches!(r, MetricRecord::Histogram { .. }))
        .collect();
    if !hists.is_empty() {
        out.push_str(&format!(
            "histograms\n  {} {:>7} {:>12} {:>12} {:>12}\n",
            pad("name", name_width),
            "count",
            "mean",
            "min",
            "max"
        ));
        for record in &hists {
            if let MetricRecord::Histogram { name, count, sum, min, max, .. } = record {
                let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                out.push_str(&format!(
                    "  {} {count:>7} {mean:>12.2} {min:>12.2} {max:>12.2}\n",
                    pad(name, name_width)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<MetricRecord> {
        vec![
            MetricRecord::Span {
                name: "fit/train(aspect=device)".into(),
                count: 3,
                total_ms: 120.0,
                mean_ms: 40.0,
                min_ms: 30.0,
                max_ms: 55.0,
            },
            MetricRecord::Counter { name: "events_parsed".into(), value: 991 },
            MetricRecord::Gauge { name: "users".into(), value: 24.0 },
            MetricRecord::Histogram {
                name: "epoch_ms".into(),
                count: 2,
                sum: 12.0,
                min: 5.0,
                max: 7.0,
                buckets: vec![
                    HistogramBucket { le: Some(10.0), count: 2 },
                    HistogramBucket { le: None, count: 0 },
                ],
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_serde_json() {
        for record in sample_records() {
            let line = serde_json::to_string(&record).unwrap();
            let back: MetricRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, record, "line: {line}");
        }
    }

    #[test]
    fn kind_tags_are_snake_case() {
        let line = serde_json::to_string(&sample_records()[0]).unwrap();
        assert!(line.contains("\"kind\":\"span\""), "{line}");
        let line = serde_json::to_string(&sample_records()[3]).unwrap();
        assert!(line.contains("\"kind\":\"histogram\""), "{line}");
    }

    #[test]
    fn summary_mentions_every_metric() {
        let text = render_summary(&sample_records());
        for record in sample_records() {
            assert!(text.contains(record.name()), "missing {}:\n{text}", record.name());
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_summary(&[]), "");
    }
}
