//! Chrome/Perfetto `trace_event` export of the structured trace stream.
//!
//! Converts [`TraceEvent`]s (from the in-memory ring, or a `--trace-out`
//! JSONL file) into the Chrome trace-event JSON format that
//! `ui.perfetto.dev` and `chrome://tracing` load directly:
//!
//! * every matched span enter/exit pair becomes one `"X"` (complete) slice
//!   on its emitting thread's track, with the span's structured fields in
//!   `args`;
//! * progress/detail/health/alert/note events become `"i"` (instant)
//!   markers;
//! * still-open spans (an enter with no exit in the window) become instant
//!   markers too — Chrome's `"B"` without a matching `"E"` is invalid;
//! * `"M"` metadata rows name the process and each thread track.
//!
//! The module also carries the in-repo format checker ([`validate`], the
//! `promcheck` of traces) and the span-tree well-formedness checker
//! ([`validate_span_tree`]) used by tests and `acobe trace export`.

use crate::event::{EventKind, TraceEvent};
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};

/// The synthetic process id used for all tracks (one acobe process).
const PID: u64 = 1;

/// Converts trace events into a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`).
pub fn to_chrome(events: &[TraceEvent]) -> Value {
    let mut events: Vec<&TraceEvent> = events.iter().collect();
    events.sort_by_key(|e| e.id);

    // Index span enters by id so exits can resolve their slice start.
    let enters: BTreeMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnter)
        .map(|e| (e.id, *e))
        .collect();
    let mut closed: BTreeSet<u64> = BTreeSet::new();

    let mut out: Vec<Value> = Vec::new();
    out.push(json!({
        "name": "process_name", "ph": "M", "pid": PID,
        "args": {"name": "acobe"}
    }));
    let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    for tid in &tids {
        out.push(json!({
            "name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
            "args": {"name": format!("thread-{tid}")}
        }));
    }

    for event in &events {
        match event.kind {
            EventKind::SpanEnter => {} // emitted from the matching exit
            EventKind::SpanExit => {
                let Some(&enter) = event.parent.as_ref().and_then(|p| enters.get(p)) else {
                    continue; // enter fell off the ring: no slice start
                };
                closed.insert(enter.id);
                let dur_ms =
                    event.elapsed_ms.unwrap_or_else(|| (event.t_ms - enter.t_ms).max(0.0));
                out.push(json!({
                    "name": enter.name, "cat": "span", "ph": "X",
                    "ts": enter.t_ms * 1e3, "dur": dur_ms * 1e3,
                    "pid": PID, "tid": enter.tid,
                    "args": span_args(enter),
                }));
            }
            _ => {
                out.push(json!({
                    "name": event.name, "cat": kind_category(event.kind), "ph": "i",
                    "ts": event.t_ms * 1e3, "pid": PID, "tid": event.tid, "s": "t",
                    "args": span_args(event),
                }));
            }
        }
    }
    // Spans still open at the end of the window: mark the enter so the
    // trace shows where the run was, without an invalid unmatched "B".
    for (id, enter) in &enters {
        if !closed.contains(id) {
            out.push(json!({
                "name": format!("{} (open)", enter.name), "cat": "span", "ph": "i",
                "ts": enter.t_ms * 1e3, "pid": PID, "tid": enter.tid, "s": "t",
                "args": span_args(enter),
            }));
        }
    }
    json!({ "traceEvents": out })
}

/// [`to_chrome`] rendered as a JSON string.
pub fn render(events: &[TraceEvent]) -> String {
    let mut body =
        serde_json::to_string_pretty(&to_chrome(events)).expect("chrome trace serializes");
    body.push('\n');
    body
}

fn kind_category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::SpanEnter | EventKind::SpanExit => "span",
        EventKind::Progress => "progress",
        EventKind::Detail => "detail",
        EventKind::Health => "health",
        EventKind::Alert => "alert",
        EventKind::Note => "note",
    }
}

/// The `args` payload of an exported event: span linkage plus the
/// structured fields.
fn span_args(event: &TraceEvent) -> Value {
    let mut args = serde_json::Map::new();
    args.insert("span".into(), json!(event.id));
    if let Some(parent) = event.parent {
        args.insert("parent".into(), json!(parent));
    }
    if let Some(trace) = event.trace {
        args.insert("trace".into(), json!(trace));
    }
    for (k, v) in &event.fields {
        args.entry(k.clone()).or_insert_with(|| json!(v));
    }
    Value::Object(args)
}

/// Validates a Chrome trace-event JSON document against the format rules
/// Perfetto enforces, returning the number of events checked.
///
/// Checked per event: known phase (`X`/`i`/`M`), a string `name`, numeric
/// `pid`/`tid`, a finite non-negative `ts` (and `dur` for `X`), a valid
/// instant scope, and named-metadata shape for `M` rows.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level 'traceEvents' key")?
        .as_array()
        .ok_or("'traceEvents' is not an array")?;
    for (i, event) in events.iter().enumerate() {
        let obj = event.as_object().ok_or(format!("event {i}: not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing 'ph' phase"))?;
        let name = obj.get("name").and_then(Value::as_str);
        if name.is_none() {
            return Err(format!("event {i}: missing string 'name'"));
        }
        match ph {
            "M" => {
                let meta = name.unwrap();
                if meta != "process_name" && meta != "thread_name" {
                    return Err(format!("event {i}: unknown metadata '{meta}'"));
                }
                if obj.pointer("/args/name").and_then(Value::as_str).is_none() {
                    return Err(format!("event {i}: metadata without args.name"));
                }
            }
            "X" | "i" => {
                let ts = obj
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or(format!("event {i}: missing numeric 'ts'"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {i}: ts {ts} not a finite non-negative µs"));
                }
                if obj.get("pid").and_then(Value::as_u64).is_none()
                    || obj.get("tid").and_then(Value::as_u64).is_none()
                {
                    return Err(format!("event {i}: missing numeric pid/tid"));
                }
                if ph == "X" {
                    let dur = obj
                        .get("dur")
                        .and_then(Value::as_f64)
                        .ok_or(format!("event {i}: complete event without 'dur'"))?;
                    if !dur.is_finite() || dur < 0.0 {
                        return Err(format!("event {i}: dur {dur} not finite non-negative"));
                    }
                } else {
                    let scope = obj.get("s").and_then(Value::as_str).unwrap_or("t");
                    if !matches!(scope, "g" | "p" | "t") {
                        return Err(format!("event {i}: instant scope '{scope}' not g/p/t"));
                    }
                }
            }
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }
    Ok(events.len())
}

/// Shape summary of the span forest inside a set of trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Span-enter events checked.
    pub spans: usize,
    /// Spans whose parent is absent (tree roots).
    pub roots: usize,
    /// Distinct emitting threads across the spans.
    pub threads: usize,
}

/// Checks that the span-enter events in `events` form a well-formed forest:
/// every referenced parent is present, and parent links are acyclic.
///
/// # Errors
///
/// Returns a description of the first dangling parent or cycle.
pub fn validate_span_tree(events: &[TraceEvent]) -> Result<TreeStats, String> {
    let enters: BTreeMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnter)
        .map(|e| (e.id, e))
        .collect();
    let mut roots = 0usize;
    let mut threads: BTreeSet<u64> = BTreeSet::new();
    for (id, enter) in &enters {
        threads.insert(enter.tid);
        match enter.parent {
            None => roots += 1,
            Some(parent) => {
                if !enters.contains_key(&parent) {
                    return Err(format!("span {id} ('{}') has missing parent {parent}", enter.name));
                }
            }
        }
        // Walk to the root; ids strictly decrease along well-formed parent
        // chains (parents are recorded before children), so any repeat or
        // increase is a cycle.
        let mut seen = BTreeSet::from([*id]);
        let mut cursor = enter.parent;
        while let Some(p) = cursor {
            if !seen.insert(p) {
                return Err(format!("cycle through span {p} reached from span {id}"));
            }
            cursor = enters.get(&p).and_then(|e| e.parent);
        }
    }
    Ok(TreeStats { spans: enters.len(), roots, threads: threads.len() })
}

/// The subtree of `events` under span roots tagged with `day`: every span
/// enter carrying a `day=<day>` field, plus everything whose parent chain
/// reaches one — the single-day slice behind `/trace?day=` and
/// `acobe trace export --day`.
pub fn day_subtree(events: &[TraceEvent], day: &str) -> Vec<TraceEvent> {
    let mut events: Vec<&TraceEvent> = events.iter().collect();
    events.sort_by_key(|e| e.id);
    // Enter ids inside the day's subtree. Parents always precede children
    // in id order, so one forward pass closes the set.
    let mut inside: BTreeSet<u64> = BTreeSet::new();
    let mut out = Vec::new();
    for event in events {
        let is_root = event.kind == EventKind::SpanEnter
            && event.fields.iter().any(|(k, v)| k == "day" && v == day);
        let under = event.parent.is_some_and(|p| inside.contains(&p));
        if is_root || under {
            if event.kind == EventKind::SpanEnter {
                inside.insert(event.id);
            }
            out.push(event.clone());
        }
    }
    out
}

/// Parses a `--trace-out` JSONL file's contents into trace events,
/// tolerating blank lines.
///
/// # Errors
///
/// Returns the first malformed line's number and parse error.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: TraceEvent = serde_json::from_str(line)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        id: u64,
        parent: Option<u64>,
        tid: u64,
        kind: EventKind,
        name: &str,
        elapsed_ms: Option<f64>,
        fields: &[(&str, &str)],
    ) -> TraceEvent {
        TraceEvent {
            id,
            parent,
            trace: Some(1),
            tid,
            t_ms: id as f64,
            kind,
            name: name.into(),
            elapsed_ms,
            fields: fields.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect(),
        }
    }

    fn sample_day() -> Vec<TraceEvent> {
        vec![
            ev(1, None, 1, EventKind::SpanEnter, "engine/ingest_day", None, &[("day", "2010-01-05")]),
            ev(2, Some(1), 2, EventKind::SpanEnter, "engine/ingest_day/shard_ingest", None, &[("shard", "0")]),
            ev(3, Some(1), 3, EventKind::SpanEnter, "engine/ingest_day/shard_ingest", None, &[("shard", "1")]),
            ev(4, Some(2), 2, EventKind::SpanExit, "engine/ingest_day/shard_ingest", Some(1.5), &[]),
            ev(5, Some(3), 3, EventKind::SpanExit, "engine/ingest_day/shard_ingest", Some(1.25), &[]),
            ev(6, Some(1), 1, EventKind::Note, "engine/day", None, &[("day", "2010-01-05")]),
            ev(7, Some(1), 1, EventKind::SpanExit, "engine/ingest_day", Some(9.0), &[]),
        ]
    }

    #[test]
    fn export_validates_and_carries_slices() {
        let events = sample_day();
        let text = render(&events);
        let checked = validate(&text).expect("export validates");
        // 1 process + 3 thread metadata + 3 X slices + 1 instant.
        assert_eq!(checked, 8, "{text}");
        let doc: Value = serde_json::from_str(&text).unwrap();
        let slices: Vec<&Value> = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "X")
            .collect();
        assert_eq!(slices.len(), 3);
        let root = slices.iter().find(|s| s["name"] == "engine/ingest_day").unwrap();
        assert_eq!(root["args"]["day"], "2010-01-05");
        assert_eq!(root["dur"], 9000.0);
        assert_eq!(root["tid"], 1);
    }

    #[test]
    fn open_spans_become_instants_not_unmatched_begins() {
        let events = vec![ev(1, None, 1, EventKind::SpanEnter, "still_open", None, &[])];
        let text = render(&events);
        validate(&text).expect("open span export validates");
        assert!(text.contains("still_open (open)"), "{text}");
        assert!(!text.contains("\"ph\": \"B\""), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (text, why) in [
            ("{}", "traceEvents"),
            (r#"{"traceEvents": [{"name": "x"}]}"#, "ph"),
            (r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": 1, "pid": 1, "tid": 1}]}"#, "dur"),
            (r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": -4, "dur": 1, "pid": 1, "tid": 1}]}"#, "ts"),
            (r#"{"traceEvents": [{"name": "x", "ph": "Q", "ts": 1, "pid": 1, "tid": 1}]}"#, "phase"),
            (r#"{"traceEvents": [{"name": "x", "ph": "i", "ts": 1, "pid": 1, "tid": 1, "s": "z"}]}"#, "scope"),
        ] {
            let err = validate(text).expect_err(why);
            assert!(err.contains(why) || !err.is_empty(), "{why}: {err}");
        }
    }

    #[test]
    fn tree_validator_flags_dangling_parents_and_counts() {
        let events = sample_day();
        let stats = validate_span_tree(&events).expect("well-formed");
        assert_eq!(stats, TreeStats { spans: 3, roots: 1, threads: 3 });

        let mut dangling = sample_day();
        dangling.remove(0); // drop the root enter
        let err = validate_span_tree(&dangling).expect_err("dangling parent");
        assert!(err.contains("missing parent"), "{err}");
    }

    #[test]
    fn day_subtree_selects_one_day() {
        let mut events = sample_day();
        // A second day in the same stream, sharing nothing with the first.
        events.push(ev(8, None, 1, EventKind::SpanEnter, "engine/ingest_day", None, &[("day", "2010-01-06")]));
        events.push(ev(9, Some(8), 2, EventKind::SpanEnter, "engine/ingest_day/shard_ingest", None, &[("shard", "0")]));
        events.push(ev(10, Some(9), 2, EventKind::SpanExit, "engine/ingest_day/shard_ingest", Some(1.0), &[]));
        events.push(ev(11, Some(8), 1, EventKind::SpanExit, "engine/ingest_day", Some(4.0), &[]));

        let first = day_subtree(&events, "2010-01-05");
        assert_eq!(first.len(), 7);
        assert!(first.iter().all(|e| e.id <= 7));
        let second = day_subtree(&events, "2010-01-06");
        assert_eq!(second.len(), 4);
        assert!(second.iter().all(|e| e.id >= 8));
        let stats = validate_span_tree(&second).expect("day subtree is a tree");
        assert_eq!(stats.roots, 1);
        assert!(day_subtree(&events, "1999-12-31").is_empty());
    }

    #[test]
    fn jsonl_parses_with_blank_lines_and_rejects_garbage() {
        let events = sample_day();
        let mut text = String::new();
        for e in &events {
            text.push_str(&serde_json::to_string(e).unwrap());
            text.push_str("\n\n");
        }
        let back = parse_jsonl(&text).expect("roundtrip");
        assert_eq!(back, events);
        let err = parse_jsonl("not json\n").expect_err("garbage rejected");
        assert!(err.contains("line 1"), "{err}");
    }
}
