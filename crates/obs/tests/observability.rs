//! Integration tests for `acobe-obs`: concurrency, span nesting across
//! call layers, and the JSON-lines export format.

use acobe_obs::{MetricRecord, Registry, SpanGuard};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn concurrent_counter_increments_land_exactly() {
    let registry = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let counter = registry.counter("contended");
                for _ in 0..per_thread {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(registry.counter("contended").get(), threads * per_thread);
}

#[test]
fn concurrent_histogram_observations_land_exactly() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let hist = registry.histogram("h", &[10.0, 100.0]);
                for i in 0..1000 {
                    hist.observe((t * 1000 + i) as f64 % 150.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.histogram("h", &[]).snapshot();
    assert_eq!(snap.total, 4000);
    assert_eq!(snap.counts.iter().sum::<u64>(), 4000);
}

#[test]
fn nested_spans_aggregate_under_the_right_parent() {
    let registry = Registry::new();
    // Simulates the pipeline shape: one fit, two aspects, three epochs each.
    {
        let _fit = SpanGuard::enter_in(&registry, "fit");
        for aspect in ["first", "second"] {
            let _train = SpanGuard::enter_in(&registry, format!("train(aspect={aspect})"));
            for _ in 0..3 {
                let _epoch = SpanGuard::enter_in(&registry, "epoch");
                thread::sleep(Duration::from_millis(1));
            }
        }
    }
    assert_eq!(registry.span_stats("fit").unwrap().count, 1);
    for aspect in ["first", "second"] {
        let train = registry.span_stats(&format!("fit/train(aspect={aspect})")).unwrap();
        assert_eq!(train.count, 1);
        let epochs = registry
            .span_stats(&format!("fit/train(aspect={aspect})/epoch"))
            .unwrap();
        assert_eq!(epochs.count, 3);
        assert!(epochs.total >= Duration::from_millis(3));
        assert!(train.total >= epochs.total);
    }
    // No stray un-prefixed paths.
    assert!(registry.span_stats("train(aspect=first)").is_none());
    assert!(registry.span_stats("epoch").is_none());
}

#[test]
fn spans_on_different_threads_do_not_nest() {
    let registry = Arc::new(Registry::new());
    let _outer = SpanGuard::enter_in(&registry, "outer");
    let inner_registry = Arc::clone(&registry);
    thread::spawn(move || {
        let _inner = SpanGuard::enter_in(&inner_registry, "inner");
    })
    .join()
    .unwrap();
    // The other thread had its own empty span stack.
    assert!(registry.span_stats("inner").is_some());
    assert!(registry.span_stats("outer/inner").is_none());
}

#[test]
fn jsonl_export_roundtrips_through_serde_json() {
    let registry = Registry::new();
    registry.counter("events").add(12);
    registry.gauge("users").set(24.0);
    registry.histogram("epoch_ms", &[1.0, 10.0, 100.0]).observe(3.5);
    registry.histogram("epoch_ms", &[]).observe(250.0);
    {
        let _span = SpanGuard::enter_in(&registry, "stage");
    }

    let jsonl = registry.to_jsonl();
    let records: Vec<MetricRecord> = jsonl
        .lines()
        .map(|line| serde_json::from_str(line).expect("every line is one valid record"))
        .collect();
    assert_eq!(records.len(), 4);
    assert_eq!(records, registry.snapshot());

    // Re-serializing gives back the identical lines.
    let again: String = records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap() + "\n")
        .collect();
    assert_eq!(again, jsonl);

    // Spot-check the shape of each kind.
    assert!(records.iter().any(
        |r| matches!(r, MetricRecord::Span { name, count: 1, .. } if name == "stage")
    ));
    assert!(records.iter().any(
        |r| matches!(r, MetricRecord::Counter { name, value: 12, .. } if name == "events")
    ));
    assert!(records.iter().any(
        |r| matches!(r, MetricRecord::Gauge { name, value, .. } if name == "users" && *value == 24.0)
    ));
    match records
        .iter()
        .find(|r| matches!(r, MetricRecord::Histogram { .. }))
        .unwrap()
    {
        MetricRecord::Histogram { name, count, sum, min, max, buckets, .. } => {
            assert_eq!(name, "epoch_ms");
            assert_eq!(*count, 2);
            assert_eq!(*sum, 253.5);
            assert_eq!(*min, 3.5);
            assert_eq!(*max, 250.0);
            // Three edges plus the overflow bucket.
            assert_eq!(buckets.len(), 4);
            assert_eq!(buckets[3].le, None);
            assert_eq!(buckets[3].count, 1);
        }
        _ => unreachable!(),
    }
}

#[test]
fn global_helpers_cover_the_full_surface() {
    // Unique names: the global registry is shared across the test binary.
    acobe_obs::counter("itest/counter").add(5);
    acobe_obs::gauge("itest/gauge").set(1.5);
    acobe_obs::histogram("itest/hist", &[10.0]).observe(2.0);
    acobe_obs::counter_with("itest/labeled", &[("shard", "1")]).add(2);
    {
        let _g = acobe_obs::span!("itest_span", case = "global");
    }
    let jsonl = acobe_obs::to_jsonl();
    for needle in ["itest/counter", "itest/gauge", "itest/hist", "itest_span(case=global)"] {
        assert!(jsonl.contains(needle), "missing {needle} in:\n{jsonl}");
    }
    // Labeled series export their label set alongside the raw family name.
    assert!(
        jsonl.contains(r#"[["shard","1"]]"#),
        "missing labels in:\n{jsonl}"
    );
    let table = acobe_obs::summary_table();
    assert!(table.contains("itest/counter"));
    assert!(table.contains("itest/labeled{shard=1}"));
    assert!(table.contains("stage timings"));
}

#[test]
fn promcheck_binary_judges_exposition_edge_cases() {
    use std::process::Command;

    let bin = env!("CARGO_BIN_EXE_promcheck");
    let dir = std::env::temp_dir().join(format!("acobe_promcheck_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let run = |file: &std::path::Path| {
        Command::new(bin)
            .args(["--file", file.to_str().unwrap()])
            .output()
            .expect("spawn promcheck")
    };

    // An empty registry renders an empty document — valid, zero samples.
    let empty = dir.join("empty.prom");
    std::fs::write(&empty, acobe_obs::prometheus::render(&Registry::new())).unwrap();
    let out = run(&empty);
    assert!(
        out.status.success(),
        "empty exposition rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("promcheck: ok (0 samples"), "{stdout}");

    // Label values needing every escape (backslash, quote, newline) must
    // render escaped and satisfy the strict checker, alongside histogram
    // series whose _count/_sum/+Inf-bucket invariants it verifies.
    let registry = Registry::new();
    registry
        .counter_with("nasty", &[("path", "C:\\logs\\\"day 1\"\nnext")])
        .add(3);
    registry.gauge_with("shards", &[("shard", "0")]).set(4.0);
    registry.histogram_with("lat_ms", &[("op", "ingest")], &[1.0, 10.0]).observe(2.5);
    let nasty = dir.join("nasty.prom");
    let rendered = acobe_obs::prometheus::render(&registry);
    assert!(rendered.contains("\\\\"), "backslash unescaped:\n{rendered}");
    assert!(rendered.contains("\\n"), "newline unescaped:\n{rendered}");
    std::fs::write(&nasty, &rendered).unwrap();
    let out = run(&nasty);
    assert!(
        out.status.success(),
        "escaped exposition rejected: {}\n{rendered}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("(0 samples"), "{stdout}");

    // A malformed document (unclosed label quote) fails with a diagnostic.
    let broken = dir.join("broken.prom");
    std::fs::write(&broken, "m{label=\"oops} 1\n").unwrap();
    let out = run(&broken);
    assert!(!out.status.success(), "malformed exposition accepted");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("malformed exposition"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // No input source at all is a usage error, not a pass.
    let out = Command::new(bin).output().expect("spawn promcheck");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let _ = std::fs::remove_dir_all(&dir);
}
