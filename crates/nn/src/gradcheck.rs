//! Numerical gradient checking used by the layer test suites.
//!
//! The check wraps a layer with the scalar loss `L = ½‖y‖²` (so `dL/dy = y`),
//! runs analytic backprop, and compares against central finite differences on
//! both the input and a sample of the parameters.

use crate::layer::{Layer, Mode};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum parameter entries probed per parameter tensor.
const MAX_PROBES: usize = 48;
/// Finite-difference step.
const H: f32 = 5e-3;
/// Accepted relative error (with an absolute floor).
const TOL: f64 = 3e-2;
const ABS_FLOOR: f64 = 2e-4;

fn loss(y: &Matrix) -> f64 {
    y.data().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
}

fn forward_loss(layer: &mut dyn Layer, x: &Matrix) -> f64 {
    loss(&layer.forward(x, Mode::Train))
}

fn assert_close(analytic: f64, numeric: f64, what: &str) {
    let denom = analytic.abs().max(numeric.abs()).max(1.0);
    let rel = (analytic - numeric).abs() / denom;
    assert!(
        rel <= TOL || (analytic - numeric).abs() <= ABS_FLOOR,
        "{what}: analytic {analytic} vs numeric {numeric} (rel {rel})"
    );
}

/// Verifies a layer's analytic gradients against finite differences.
///
/// # Panics
///
/// Panics (test-style) when any probed gradient disagrees beyond tolerance.
pub fn check_layer_gradients(mut layer: Box<dyn Layer>, batch: usize, in_dim: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Matrix::from_vec(
        batch,
        in_dim,
        (0..batch * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    );

    // Analytic pass.
    layer.zero_grad();
    let y = layer.forward(&x, Mode::Train);
    let gx = layer.backward(&y.clone());

    // Collect analytic parameter gradients.
    let mut param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |_, g| param_grads.push(g.to_vec()));

    // Input gradient check.
    for r in 0..batch {
        for c in 0..in_dim {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + H);
            let lp = forward_loss(layer.as_mut(), &xp);
            xp.set(r, c, x.get(r, c) - H);
            let lm = forward_loss(layer.as_mut(), &xp);
            let numeric = (lp - lm) / (2.0 * H as f64);
            assert_close(gx.get(r, c) as f64, numeric, &format!("dL/dx[{r},{c}]"));
        }
    }

    // Parameter gradient check (probe a sample of entries per tensor).
    let tensor_count = param_grads.len();
    for t in 0..tensor_count {
        let len = param_grads[t].len();
        let stride = len.div_ceil(MAX_PROBES).max(1);
        for i in (0..len).step_by(stride) {
            let analytic = param_grads[t][i] as f64;
            let orig = perturb_param(layer.as_mut(), t, i, H);
            let lp = forward_loss(layer.as_mut(), &x);
            set_param(layer.as_mut(), t, i, orig - H);
            let lm = forward_loss(layer.as_mut(), &x);
            set_param(layer.as_mut(), t, i, orig);
            let numeric = (lp - lm) / (2.0 * H as f64);
            assert_close(analytic, numeric, &format!("dL/dp[{t}][{i}]"));
        }
    }
}

/// Adds `delta` to parameter `(tensor, index)` and returns the original value.
fn perturb_param(layer: &mut dyn Layer, tensor: usize, index: usize, delta: f32) -> f32 {
    let mut t = 0usize;
    let mut orig = 0.0f32;
    layer.visit_params(&mut |p, _| {
        if t == tensor {
            orig = p[index];
            p[index] += delta;
        }
        t += 1;
    });
    orig
}

fn set_param(layer: &mut dyn Layer, tensor: usize, index: usize, value: f32) {
    let mut t = 0usize;
    layer.visit_params(&mut |p, _| {
        if t == tensor {
            p[index] = value;
        }
        t += 1;
    });
}
