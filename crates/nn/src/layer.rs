//! The layer abstraction shared by all network building blocks.

use crate::tensor::Matrix;

/// Whether a forward pass is part of training or inference.
///
/// Batch normalization behaves differently in the two modes (batch statistics
/// vs. running statistics), exactly as `tf.keras.layers.BatchNormalization`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: layers may cache activations and update running statistics.
    Train,
    /// Inference: no caches are required afterwards, running stats are used.
    Eval,
}

/// A differentiable network layer.
///
/// Layers own their parameters and parameter gradients. `forward` in
/// [`Mode::Train`] must cache whatever `backward` needs; `backward` receives
/// the loss gradient w.r.t. the layer output and returns the gradient w.r.t.
/// the layer input, accumulating parameter gradients internally.
pub trait Layer: Send {
    /// Computes the layer output for a batch (rows = samples).
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix;

    /// Back-propagates `grad_output` (dL/dy), returning dL/dx.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called without a preceding
    /// [`Layer::forward`] in [`Mode::Train`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Visits every `(parameter, gradient)` slice pair, in a stable order.
    ///
    /// Optimizers rely on the visitation order being identical across calls to
    /// associate per-parameter state.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32]));

    /// Resets accumulated parameter gradients to zero.
    fn zero_grad(&mut self);

    /// Visits every non-trainable state buffer (e.g. BatchNorm running
    /// statistics), in a stable order. Default: no buffers.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut [f32])) {}

    /// Number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Short human-readable name for debugging.
    fn name(&self) -> &'static str;

    /// Output width given an input width (for shape validation).
    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}
