//! The layer abstraction shared by all network building blocks.

use crate::tensor::Matrix;

/// Whether a forward pass is part of training or inference.
///
/// Batch normalization behaves differently in the two modes (batch statistics
/// vs. running statistics), exactly as `tf.keras.layers.BatchNormalization`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: layers may cache activations and update running statistics.
    Train,
    /// Inference: no caches are required afterwards, running stats are used.
    Eval,
}

/// A differentiable network layer.
///
/// Layers own their parameters and parameter gradients. The required methods
/// are the buffer-reusing [`Layer::forward_into`] / [`Layer::backward_into`]
/// pair — the training loop threads long-lived output buffers through them so
/// steady-state epochs allocate nothing. The allocating [`Layer::forward`] /
/// [`Layer::backward`] wrappers are provided for tests, gradient checking and
/// one-off inference.
///
/// `forward_into` in [`Mode::Train`] must cache whatever `backward_into`
/// needs (into reused internal buffers); `backward_into` receives the loss
/// gradient w.r.t. the layer output and produces the gradient w.r.t. the
/// layer input, accumulating parameter gradients internally.
pub trait Layer: Send {
    /// Computes the layer output for a batch (rows = samples) into `out`,
    /// resizing it as needed. `out` must not alias `input`.
    fn forward_into(&mut self, input: &Matrix, mode: Mode, out: &mut Matrix);

    /// Back-propagates `grad_output` (dL/dy) into `grad_input` (dL/dx),
    /// resizing it as needed. `grad_input` must not alias `grad_output`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called without a preceding
    /// [`Layer::forward_into`] in [`Mode::Train`].
    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix);

    /// Computes the layer output for a batch, allocating the result.
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, mode, &mut out);
        out
    }

    /// Back-propagates `grad_output` (dL/dy), returning dL/dx, allocating
    /// the result.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called without a preceding
    /// [`Layer::forward`] in [`Mode::Train`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    /// Visits every `(parameter, gradient)` slice pair, in a stable order.
    ///
    /// Optimizers rely on the visitation order being identical across calls to
    /// associate per-parameter state.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32]));

    /// Resets accumulated parameter gradients to zero.
    fn zero_grad(&mut self);

    /// Visits every non-trainable state buffer (e.g. BatchNorm running
    /// statistics), in a stable order. Default: no buffers.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut [f32])) {}

    /// Number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Short human-readable name for debugging.
    fn name(&self) -> &'static str;

    /// Output width given an input width (for shape validation).
    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}
