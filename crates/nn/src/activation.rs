//! Activation layers: ReLU (the paper's choice), Sigmoid and Linear.

use crate::layer::{Layer, Mode};
use crate::tensor::Matrix;

/// Rectified linear unit: `y = max(0, x)`.
///
/// # Examples
///
/// ```
/// use acobe_nn::activation::Relu;
/// use acobe_nn::layer::{Layer, Mode};
/// use acobe_nn::tensor::Matrix;
/// let mut relu = Relu::new();
/// let y = relu.forward(&Matrix::from_rows(&[&[-1.0, 2.0]]), Mode::Eval);
/// assert_eq!(y, Matrix::from_rows(&[&[0.0, 2.0]]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Matrix>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward_into(&mut self, input: &Matrix, mode: Mode, out: &mut Matrix) {
        input.map_into(|x| x.max(0.0), out);
        if mode == Mode::Train {
            let mask = self.mask.get_or_insert_with(Matrix::default);
            input.map_into(|x| if x > 0.0 { 1.0 } else { 0.0 }, mask);
        }
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward without a train-mode forward");
        grad_output.hadamard_into(mask, grad_input);
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &[f32])) {}

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{-x})`.
///
/// Useful as the output activation when inputs are normalized to `[0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    out: Option<Matrix>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward_into(&mut self, input: &Matrix, mode: Mode, out: &mut Matrix) {
        input.map_into(|x| 1.0 / (1.0 + (-x).exp()), out);
        if mode == Mode::Train {
            let cache = self.out.get_or_insert_with(Matrix::default);
            cache.copy_from(out);
        }
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let y = self
            .out
            .as_ref()
            .expect("Sigmoid::backward without a train-mode forward");
        assert_eq!(grad_output.shape(), y.shape(), "sigmoid gradient shape mismatch");
        grad_input.resize(grad_output.rows(), grad_output.cols());
        for ((o, &g), &v) in grad_input
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(y.data())
        {
            *o = g * v * (1.0 - v);
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &[f32])) {}

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Output-activation choice for network builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputActivation {
    /// ReLU — what the paper reports for every `Dense` layer.
    #[default]
    Relu,
    /// Sigmoid — natural for `[0, 1]`-scaled targets.
    Sigmoid,
    /// Identity.
    Linear,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn relu_forward() {
        let mut relu = Relu::new();
        let y = relu.forward(&Matrix::from_rows(&[&[-2.0, 0.0, 3.0]]), Mode::Eval);
        assert_eq!(y, Matrix::from_rows(&[&[0.0, 0.0, 3.0]]));
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = Relu::new();
        let _ = relu.forward(&Matrix::from_rows(&[&[-2.0, 5.0]]), Mode::Train);
        let gx = relu.backward(&Matrix::from_rows(&[&[10.0, 10.0]]));
        assert_eq!(gx, Matrix::from_rows(&[&[0.0, 10.0]]));
    }

    #[test]
    fn sigmoid_forward_known_values() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Matrix::from_rows(&[&[0.0]]), Mode::Eval);
        assert!((y.get(0, 0) - 0.5).abs() < 1e-6);
        let y = s.forward(&Matrix::from_rows(&[&[100.0, -100.0]]), Mode::Eval);
        assert!((y.get(0, 0) - 1.0).abs() < 1e-6);
        assert!(y.get(0, 1) < 1e-6);
    }

    #[test]
    fn sigmoid_gradients_check() {
        check_layer_gradients(Box::new(Sigmoid::new()), 4, 6, 0xabc);
    }

    #[test]
    fn relu_gradients_check() {
        // Note: finite differences at exactly 0 are undefined for ReLU, but
        // random inputs land at 0 with probability ~0.
        check_layer_gradients(Box::new(Relu::new()), 4, 6, 0xdef);
    }

    #[test]
    fn activations_have_no_params() {
        let mut r = Relu::new();
        assert_eq!(Layer::param_count(&mut r), 0);
        let mut s = Sigmoid::new();
        assert_eq!(Layer::param_count(&mut s), 0);
    }
}
