//! Loss functions. The paper trains with mean-squared error.

use crate::tensor::Matrix;

/// Mean-squared error over every element of the batch, with its gradient.
///
/// Matches Keras `MeanSquaredError` reduction: mean over samples of the mean
/// over features; the returned gradient is `2 (pred - target) / (N · F)`.
///
/// # Panics
///
/// Panics if shapes differ.
///
/// # Examples
///
/// ```
/// use acobe_nn::loss::mse;
/// use acobe_nn::tensor::Matrix;
/// let pred = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let target = Matrix::from_rows(&[&[0.0, 0.0]]);
/// let (loss, _grad) = mse(&pred, &target);
/// assert!((loss - 2.5).abs() < 1e-6);
/// ```
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let diff = pred.sub(target);
    let n = (pred.rows() * pred.cols()).max(1) as f32;
    let loss = diff.norm_sq() / n;
    let mut grad = diff;
    grad.scale(2.0 / n);
    (loss, grad)
}

/// Like [`mse`], writing the gradient into a reused buffer and returning only
/// the loss — the allocation-free variant the training loop uses.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_into(pred: &Matrix, target: &Matrix, grad: &mut Matrix) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f32;
    grad.resize(pred.rows(), pred.cols());
    for ((d, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data()) {
        *d = p - t;
    }
    let loss = grad.norm_sq() / n;
    grad.scale(2.0 / n);
    loss
}

/// Per-sample mean-squared reconstruction error — the paper's anomaly score.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn per_sample_mse(pred: &Matrix, target: &Matrix) -> Vec<f32> {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    pred.sub(target).row_mean_sq()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        let pred = Matrix::from_rows(&[&[1.0, 3.0], &[0.0, 0.0]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        // squared errors: 1, 4, 0, 0 -> mean 1.25
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 1.25).abs() < 1e-6);
        // grad = 2*diff/4
        assert!((grad.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((grad.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let target = Matrix::from_rows(&[&[0.2, -0.3], &[0.7, 0.1]]);
        let pred = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let (_, grad) = mse(&pred, &target);
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..2 {
                let mut p = pred.clone();
                p.set(r, c, pred.get(r, c) + h);
                let (lp, _) = mse(&p, &target);
                p.set(r, c, pred.get(r, c) - h);
                let (lm, _) = mse(&p, &target);
                let numeric = (lp - lm) / (2.0 * h);
                assert!((grad.get(r, c) - numeric).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn mse_into_matches_mse() {
        let pred = Matrix::from_rows(&[&[1.0, 3.0], &[0.2, -0.4]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0], &[0.5, 0.5]]);
        let (loss, grad) = mse(&pred, &target);
        let mut grad_buf = Matrix::zeros(1, 1);
        let loss2 = mse_into(&pred, &target, &mut grad_buf);
        assert_eq!(loss, loss2);
        assert_eq!(grad, grad_buf);
    }

    #[test]
    fn per_sample_errors() {
        let pred = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 2.0]]);
        let target = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        assert_eq!(per_sample_mse(&pred, &target), vec![0.0, 2.0]);
    }

    #[test]
    fn perfect_prediction_zero_loss() {
        let m = Matrix::from_rows(&[&[0.4, 0.6]]);
        let (loss, grad) = mse(&m, &m);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }
}
