//! Optimizers: Adadelta (the paper's choice), Adam, and SGD with momentum.
//!
//! Optimizers keep per-parameter state keyed by the stable visitation order of
//! [`crate::net::Sequential::visit_params`].

use crate::net::Sequential;

/// A gradient-descent optimizer over a [`Sequential`] network.
pub trait Optimizer: Send {
    /// Applies one update step from the gradients currently accumulated in
    /// the network, then leaves gradients untouched (callers typically
    /// `zero_grad` next).
    fn step(&mut self, net: &mut Sequential);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Adadelta (Zeiler 2012). The paper trains with Adadelta; defaults follow the
/// original paper (`rho = 0.95`, `eps = 1e-6`, `lr = 1.0`).
///
/// TF 2.0's Keras default of `lr = 0.001` effectively freezes training for
/// this workload; we document and default to the Zeiler semantics instead
/// (see DESIGN.md).
#[derive(Debug, Clone)]
pub struct Adadelta {
    lr: f32,
    rho: f32,
    eps: f32,
    accum_grad: Vec<Vec<f32>>,
    accum_update: Vec<Vec<f32>>,
}

impl Adadelta {
    /// Creates an Adadelta optimizer with the Zeiler defaults.
    pub fn new() -> Self {
        Self::with_options(1.0, 0.95, 1e-6)
    }

    /// Creates an Adadelta optimizer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `rho` not in `[0,1)`, or `eps <= 0`.
    pub fn with_options(lr: f32, rho: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "lr must be positive");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        assert!(eps > 0.0, "eps must be positive");
        Adadelta {
            lr,
            rho,
            eps,
            accum_grad: Vec::new(),
            accum_update: Vec::new(),
        }
    }
}

impl Default for Adadelta {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adadelta {
    fn step(&mut self, net: &mut Sequential) {
        let mut slot = 0usize;
        let (ag, au, rho, eps, lr) = (
            &mut self.accum_grad,
            &mut self.accum_update,
            self.rho,
            self.eps,
            self.lr,
        );
        net.visit_params(&mut |p, g| {
            if slot >= ag.len() {
                ag.push(vec![0.0; p.len()]);
                au.push(vec![0.0; p.len()]);
            }
            let (eg, eu) = (&mut ag[slot], &mut au[slot]);
            for i in 0..p.len() {
                let gi = g[i];
                eg[i] = rho * eg[i] + (1.0 - rho) * gi * gi;
                let update = (eu[i] + eps).sqrt() / (eg[i] + eps).sqrt() * gi;
                eu[i] = rho * eu[i] + (1.0 - rho) * update * update;
                p[i] -= lr * update;
            }
            slot += 1;
        });
    }

    fn name(&self) -> &'static str {
        "adadelta"
    }
}

/// Adam (Kingma & Ba 2015), for ablations and faster convergence in tests.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the usual defaults (`lr = 1e-3`).
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "lr must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut slot = 0usize;
        let (ms, vs, b1, b2, eps, lr) = (
            &mut self.m,
            &mut self.v,
            self.beta1,
            self.beta2,
            self.eps,
            self.lr,
        );
        net.visit_params(&mut |p, g| {
            if slot >= ms.len() {
                ms.push(vec![0.0; p.len()]);
                vs.push(vec![0.0; p.len()]);
            }
            let (m, v) = (&mut ms[slot], &mut vs[slot]);
            for i in 0..p.len() {
                let gi = g[i];
                m[i] = b1 * m[i] + (1.0 - b1) * gi;
                v[i] = b2 * v[i] + (1.0 - b2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            slot += 1;
        });
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` not in `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "lr must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential) {
        let mut slot = 0usize;
        let (vel, mom, lr) = (&mut self.velocity, self.momentum, self.lr);
        net.visit_params(&mut |p, g| {
            if slot >= vel.len() {
                vel.push(vec![0.0; p.len()]);
            }
            let v = &mut vel[slot];
            for i in 0..p.len() {
                v[i] = mom * v[i] + g[i];
                p[i] -= lr * v[i];
            }
            slot += 1;
        });
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Mode;
    use crate::loss::mse;
    use crate::net::Sequential;
    use crate::tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 4, &mut rng)));
        net.push(Box::new(crate::activation::Relu::new()));
        net.push(Box::new(Dense::new(4, 2, &mut rng)));
        net
    }

    fn train_step(net: &mut Sequential, opt: &mut dyn Optimizer, x: &Matrix) -> f32 {
        net.zero_grad();
        let y = net.forward(x, Mode::Train);
        let (loss, grad) = mse(&y, x);
        net.backward(&grad);
        opt.step(net);
        loss
    }

    fn optimizer_reduces_loss(opt: &mut dyn Optimizer) {
        let mut net = tiny_net(3);
        let x = Matrix::from_rows(&[&[0.3, 0.8], &[0.9, 0.1], &[0.5, 0.5]]);
        let first = train_step(&mut net, opt, &x);
        let mut last = first;
        for _ in 0..200 {
            last = train_step(&mut net, opt, &x);
        }
        assert!(
            last < first * 0.5,
            "{} failed to reduce loss: {first} -> {last}",
            opt.name()
        );
    }

    #[test]
    fn adadelta_reduces_loss() {
        optimizer_reduces_loss(&mut Adadelta::new());
    }

    #[test]
    fn adam_reduces_loss() {
        optimizer_reduces_loss(&mut Adam::new(1e-2));
    }

    #[test]
    fn sgd_reduces_loss() {
        optimizer_reduces_loss(&mut Sgd::with_momentum(0.1, 0.9));
    }

    #[test]
    fn adadelta_single_param_matches_hand_computation() {
        // One dense 1->1 with known gradient: check the Adadelta formula.
        let mut net = Sequential::new();
        net.push(Box::new(Dense::from_parts(
            Matrix::from_rows(&[&[1.0]]),
            vec![0.0],
        )));
        let x = Matrix::from_rows(&[&[1.0]]);
        let target = Matrix::from_rows(&[&[0.0]]);
        net.zero_grad();
        let y = net.forward(&x, Mode::Train);
        let (_, grad) = mse(&y, &target);
        net.backward(&grad);
        // g = 2*(1-0)*x = 2 for w
        let mut opt = Adadelta::with_options(1.0, 0.95, 1e-6);
        opt.step(&mut net);
        let mut w_after = 0.0;
        net.visit_params(&mut |p, _| {
            if p.len() == 1 && w_after == 0.0 {
                w_after = p[0];
            }
        });
        // eg = 0.05*4 = 0.2 ; update = sqrt(1e-6)/sqrt(0.2+1e-6)*2 ≈ 0.004472
        let expected = 1.0 - (1e-6f32).sqrt() / (0.2f32 + 1e-6).sqrt() * 2.0;
        assert!((w_after - expected).abs() < 1e-5, "{w_after} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn invalid_lr_rejected() {
        let _ = Sgd::new(0.0);
    }
}
