//! Weight initialization schemes.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Glorot/Xavier uniform initialization: `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))` — the Keras `Dense` default used by
/// the paper's TensorFlow implementation.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

/// He/Kaiming uniform initialization: `limit = sqrt(6 / fan_in)` — an
/// alternative better matched to ReLU stacks, used by ablations.
pub fn he_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / fan_in as f64).sqrt() as f32;
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn glorot_bounds_and_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot_uniform(100, 50, &mut rng);
        assert_eq!(w.shape(), (100, 50));
        let limit = (6.0f32 / 150.0).sqrt();
        for &x in w.data() {
            assert!(x.abs() <= limit + 1e-6);
        }
        // Not all equal.
        let first = w.data()[0];
        assert!(w.data().iter().any(|&x| (x - first).abs() > 1e-9));
    }

    #[test]
    fn he_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = he_uniform(24, 8, &mut rng);
        let limit = (6.0f32 / 24.0).sqrt();
        for &x in w.data() {
            assert!(x.abs() <= limit + 1e-6);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = glorot_uniform(10, 10, &mut StdRng::seed_from_u64(42));
        let b = glorot_uniform(10, 10, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
