//! A sequential stack of layers.

use crate::layer::{Layer, Mode};
use crate::tensor::Matrix;

/// A feed-forward network: layers applied in order.
///
/// # Examples
///
/// ```
/// use acobe_nn::dense::Dense;
/// use acobe_nn::layer::Mode;
/// use acobe_nn::net::Sequential;
/// use acobe_nn::tensor::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(Dense::new(3, 2, &mut rng)));
/// let y = net.forward(&Matrix::zeros(4, 3), Mode::Eval);
/// assert_eq!(y.shape(), (4, 2));
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    // Ping-pong activation/gradient scratch reused by `forward_scratch` /
    // `backward_scratch`; steady-state training allocates nothing through
    // them.
    ping: Matrix,
    pong: Matrix,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential").field("layers", &names).finish()
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass, allocating the result.
    pub fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        self.forward_scratch(input, mode).clone()
    }

    /// Runs the forward pass through the network's reusable ping-pong
    /// buffers, returning a reference to the output activation. Steady-state
    /// calls never allocate — this is what the training loop uses.
    pub fn forward_scratch(&mut self, input: &Matrix, mode: Mode) -> &Matrix {
        self.ping.copy_from(input);
        for layer in &mut self.layers {
            layer.forward_into(&self.ping, mode, &mut self.pong);
            std::mem::swap(&mut self.ping, &mut self.pong);
        }
        &self.ping
    }

    /// Back-propagates the loss gradient through every layer (reverse order),
    /// returning the gradient w.r.t. the network input, allocating the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding train-mode [`Sequential::forward`].
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        self.backward_scratch(grad_output).clone()
    }

    /// Back-propagates through the reusable ping-pong buffers, returning a
    /// reference to the input gradient. Steady-state calls never allocate.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding train-mode forward pass.
    pub fn backward_scratch(&mut self, grad_output: &Matrix) -> &Matrix {
        self.ping.copy_from(grad_output);
        for layer in self.layers.iter_mut().rev() {
            layer.backward_into(&self.ping, &mut self.pong);
            std::mem::swap(&mut self.ping, &mut self.pong);
        }
        &self.ping
    }

    /// Visits every `(parameter, gradient)` pair across all layers in a
    /// stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Clears every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Visits every state buffer across all layers in a stable order.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }

    /// Copies every state buffer into one flat vector (stable order).
    pub fn buffer_vector(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_buffers(&mut |b| out.extend_from_slice(b));
        out
    }

    /// Loads state buffers from a flat vector produced by
    /// [`Sequential::buffer_vector`] on an identically-shaped network.
    ///
    /// # Errors
    ///
    /// Returns the expected length when `state` has the wrong size.
    pub fn load_buffer_vector(&mut self, state: &[f32]) -> Result<(), usize> {
        let mut expected = 0;
        self.visit_buffers(&mut |b| expected += b.len());
        if state.len() != expected {
            return Err(expected);
        }
        let mut offset = 0usize;
        self.visit_buffers(&mut |b| {
            b.copy_from_slice(&state[offset..offset + b.len()]);
            offset += b.len();
        });
        Ok(())
    }

    /// Copies every parameter into one flat vector (stable order).
    pub fn state_vector(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Loads parameters from a flat vector produced by
    /// [`Sequential::state_vector`] on an identically-shaped network.
    ///
    /// # Errors
    ///
    /// Returns the expected length when `state` has the wrong size.
    pub fn load_state_vector(&mut self, state: &[f32]) -> Result<(), usize> {
        let expected = self.param_count();
        if state.len() != expected {
            return Err(expected);
        }
        let mut offset = 0usize;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&state[offset..offset + p.len()]);
            offset += p.len();
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::batchnorm::BatchNorm;
    use crate::dense::Dense;
    use crate::gradcheck::check_layer_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct NetAsLayer(Sequential);
    impl Layer for NetAsLayer {
        fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
            out.copy_from(self.0.forward_scratch(x, mode));
        }
        fn backward_into(&mut self, g: &Matrix, gi: &mut Matrix) {
            gi.copy_from(self.0.backward_scratch(g));
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
            self.0.visit_params(f)
        }
        fn zero_grad(&mut self) {
            self.0.zero_grad()
        }
        fn name(&self) -> &'static str {
            "net"
        }
    }

    fn deep_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(6, 8, &mut rng)));
        net.push(Box::new(BatchNorm::new(8)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::new(8, 4, &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::new(4, 6, &mut rng)));
        net
    }

    #[test]
    fn whole_network_gradients_check() {
        check_layer_gradients(Box::new(NetAsLayer(deep_net(11))), 5, 6, 0xcafe);
    }

    #[test]
    fn state_vector_roundtrip() {
        let mut a = deep_net(1);
        let mut b = deep_net(2);
        let state = a.state_vector();
        assert_eq!(state.len(), a.param_count());
        b.load_state_vector(&state).unwrap();
        let x = Matrix::filled(3, 6, 0.25);
        // Eval mode: BatchNorm running stats are both fresh (zeros/ones).
        let ya = a.forward(&x, Mode::Eval);
        let yb = b.forward(&x, Mode::Eval);
        for (p, q) in ya.data().iter().zip(yb.data()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn load_wrong_size_errors() {
        let mut a = deep_net(1);
        let err = a.load_state_vector(&[0.0; 3]).unwrap_err();
        assert_eq!(err, a.param_count());
    }

    #[test]
    fn scratch_and_allocating_paths_agree() {
        let mut a = deep_net(4);
        let mut b = deep_net(4);
        let x = Matrix::filled(5, 6, 0.3);
        let ya = a.forward(&x, Mode::Train);
        let yb = b.forward_scratch(&x, Mode::Train).clone();
        assert_eq!(ya, yb);
        let ga = a.backward(&ya);
        let gb = b.backward_scratch(&yb).clone();
        assert_eq!(ga, gb);
    }

    #[test]
    fn debug_lists_layers() {
        let net = deep_net(1);
        let s = format!("{net:?}");
        assert!(s.contains("dense") && s.contains("batchnorm") && s.contains("relu"));
    }
}
