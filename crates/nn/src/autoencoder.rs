//! The paper's deep fully-connected autoencoder.
//!
//! Architecture (Section V, "Implementation"): encoder hidden layers
//! 512-256-128-64 and decoder 128-256-512-output, each `Dense` activated by
//! ReLU with `BatchNormalization` between layers, trained by Adadelta on MSE.

use crate::activation::{OutputActivation, Relu, Sigmoid};
use crate::batchnorm::BatchNorm;
use crate::dense::Dense;
use crate::layer::Mode;
use crate::loss::per_sample_mse;
use crate::net::Sequential;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for [`Autoencoder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoencoderConfig {
    /// Width of the input (and reconstruction).
    pub input_dim: usize,
    /// Encoder hidden widths; the decoder mirrors them. The last entry is the
    /// bottleneck code width.
    pub encoder_dims: Vec<usize>,
    /// Insert BatchNorm after every hidden Dense (the paper does).
    pub batch_norm: bool,
    /// Output activation (the paper uses ReLU everywhere; inputs are `[0,1]`).
    pub output_activation: OutputActivationKind,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

/// Serializable mirror of [`OutputActivation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OutputActivationKind {
    /// ReLU output.
    #[default]
    Relu,
    /// Sigmoid output.
    Sigmoid,
    /// Linear output.
    Linear,
}

impl From<OutputActivationKind> for OutputActivation {
    fn from(k: OutputActivationKind) -> Self {
        match k {
            OutputActivationKind::Relu => OutputActivation::Relu,
            OutputActivationKind::Sigmoid => OutputActivation::Sigmoid,
            OutputActivationKind::Linear => OutputActivation::Linear,
        }
    }
}

impl AutoencoderConfig {
    /// The paper's configuration for a given input width:
    /// 512-256-128-64 encoder, mirrored decoder, BatchNorm, ReLU.
    pub fn paper(input_dim: usize) -> Self {
        AutoencoderConfig {
            input_dim,
            encoder_dims: vec![512, 256, 128, 64],
            batch_norm: true,
            output_activation: OutputActivationKind::Relu,
            seed: 0x_ac0b_e000,
        }
    }

    /// A smaller architecture for fast tests and scaled-down experiments.
    pub fn small(input_dim: usize) -> Self {
        AutoencoderConfig {
            input_dim,
            encoder_dims: vec![64, 32, 16],
            batch_norm: true,
            output_activation: OutputActivationKind::Relu,
            seed: 0x_ac0b_e000,
        }
    }

    /// Replaces the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the output activation (builder-style).
    pub fn with_output(mut self, out: OutputActivationKind) -> Self {
        self.output_activation = out;
        self
    }
}

/// A deep fully-connected autoencoder with reconstruction-error scoring.
///
/// # Examples
///
/// ```
/// use acobe_nn::autoencoder::{Autoencoder, AutoencoderConfig};
/// use acobe_nn::tensor::Matrix;
/// let mut ae = Autoencoder::new(AutoencoderConfig::small(8));
/// let scores = ae.reconstruction_errors(&Matrix::zeros(3, 8));
/// assert_eq!(scores.len(), 3);
/// ```
#[derive(Debug)]
pub struct Autoencoder {
    net: Sequential,
    config: AutoencoderConfig,
}

impl Autoencoder {
    /// Builds the network described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0` or `encoder_dims` is empty.
    pub fn new(config: AutoencoderConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(!config.encoder_dims.is_empty(), "encoder_dims must be non-empty");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut net = Sequential::new();

        let mut dims = Vec::with_capacity(config.encoder_dims.len() * 2 + 1);
        dims.push(config.input_dim);
        dims.extend(&config.encoder_dims);
        // Mirror all but the bottleneck, then back to the input width.
        for d in config.encoder_dims.iter().rev().skip(1) {
            dims.push(*d);
        }
        dims.push(config.input_dim);

        let last = dims.len() - 2;
        for (i, pair) in dims.windows(2).enumerate() {
            net.push(Box::new(Dense::new(pair[0], pair[1], &mut rng)));
            if i < last {
                if config.batch_norm {
                    net.push(Box::new(BatchNorm::new(pair[1])));
                }
                net.push(Box::new(Relu::new()));
            } else {
                match config.output_activation.into() {
                    OutputActivation::Relu => net.push(Box::new(Relu::new())),
                    OutputActivation::Sigmoid => net.push(Box::new(Sigmoid::new())),
                    OutputActivation::Linear => {}
                }
            }
        }
        Autoencoder { net, config }
    }

    /// The configuration used to build the network.
    pub fn config(&self) -> &AutoencoderConfig {
        &self.config
    }

    /// Mutable access to the underlying network (for the trainer/optimizer).
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// The underlying network.
    pub fn net(&self) -> &Sequential {
        &self.net
    }

    /// Reconstructs a batch in inference mode.
    pub fn reconstruct(&mut self, batch: &Matrix) -> Matrix {
        self.net.forward(batch, Mode::Eval)
    }

    /// Per-sample anomaly scores: mean-squared reconstruction error.
    pub fn reconstruction_errors(&mut self, batch: &Matrix) -> Vec<f32> {
        let recon = self.reconstruct(batch);
        per_sample_mse(&recon, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_mirrors_encoder() {
        let mut ae = Autoencoder::new(AutoencoderConfig {
            input_dim: 10,
            encoder_dims: vec![8, 4],
            batch_norm: true,
            output_activation: OutputActivationKind::Relu,
            seed: 1,
        });
        // dense(10,8) bn relu dense(8,4) bn relu dense(4,8) bn relu dense(8,10) relu
        // = 4 dense + 3 bn + 3 hidden relu + 1 output relu = 11 layers
        assert_eq!(ae.net().len(), 11);
        let y = ae.reconstruct(&Matrix::zeros(2, 10));
        assert_eq!(y.shape(), (2, 10));
    }

    #[test]
    fn paper_config_shape() {
        let cfg = AutoencoderConfig::paper(840);
        assert_eq!(cfg.encoder_dims, vec![512, 256, 128, 64]);
        let mut ae = Autoencoder::new(cfg);
        let y = ae.reconstruct(&Matrix::zeros(1, 840));
        assert_eq!(y.shape(), (1, 840));
    }

    #[test]
    fn relu_output_is_nonnegative() {
        let mut ae = Autoencoder::new(AutoencoderConfig::small(6).with_seed(3));
        let x = Matrix::from_vec(4, 6, (0..24).map(|i| (i as f32) / 24.0).collect());
        let y = ae.reconstruct(&x);
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sigmoid_output_is_bounded() {
        let mut ae = Autoencoder::new(
            AutoencoderConfig::small(6).with_output(OutputActivationKind::Sigmoid),
        );
        let x = Matrix::filled(2, 6, 0.9);
        let y = ae.reconstruct(&x);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Autoencoder::new(AutoencoderConfig::small(5).with_seed(9));
        let mut b = Autoencoder::new(AutoencoderConfig::small(5).with_seed(9));
        let x = Matrix::filled(1, 5, 0.4);
        assert_eq!(a.reconstruct(&x), b.reconstruct(&x));
    }

    #[test]
    #[should_panic(expected = "input_dim")]
    fn zero_input_dim_rejected() {
        let _ = Autoencoder::new(AutoencoderConfig::small(0));
    }
}
