//! Batch normalization (Ioffe & Szegedy 2015), matching
//! `tf.keras.layers.BatchNormalization` semantics: batch statistics during
//! training with exponential running-statistic updates, running statistics
//! during inference. Defaults `momentum = 0.99`, `epsilon = 1e-3` are the
//! Keras defaults the paper's implementation would have used.

use crate::layer::{Layer, Mode};
use crate::tensor::Matrix;

/// Per-feature batch normalization for 2-D activations (rows = samples).
///
/// # Examples
///
/// ```
/// use acobe_nn::batchnorm::BatchNorm;
/// use acobe_nn::layer::{Layer, Mode};
/// use acobe_nn::tensor::Matrix;
/// let mut bn = BatchNorm::new(2);
/// let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
/// let y = bn.forward(&x, Mode::Train);
/// // Batch statistics make each feature ~zero-mean.
/// let m = y.col_mean();
/// assert!(m[0].abs() < 1e-5 && m[1].abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<Cache>,
    // Reused per-forward/backward scratch (batch mean/variance and the two
    // per-feature backward reductions) so training epochs allocate nothing.
    mean_buf: Vec<f32>,
    var_buf: Vec<f32>,
    red_dxhat: Vec<f32>,
    red_dxhat_xhat: Vec<f32>,
}

#[derive(Debug, Clone, Default)]
struct Cache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

impl BatchNorm {
    /// Creates a layer for `dim` features with Keras defaults.
    pub fn new(dim: usize) -> Self {
        Self::with_options(dim, 0.99, 1e-3)
    }

    /// Creates a layer with explicit momentum and epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)` or `eps <= 0`.
    pub fn with_options(dim: usize, momentum: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        assert!(eps > 0.0, "eps must be positive");
        BatchNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            grad_gamma: vec![0.0; dim],
            grad_beta: vec![0.0; dim],
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum,
            eps,
            cache: None,
            mean_buf: Vec::new(),
            var_buf: Vec::new(),
            red_dxhat: Vec::new(),
            red_dxhat_xhat: Vec::new(),
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Current running mean (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Current running variance (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm {
    fn forward_into(&mut self, input: &Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(input.cols(), self.dim(), "batchnorm width mismatch");
        let (rows, cols) = input.shape();
        out.resize(rows, cols);
        match mode {
            Mode::Train => {
                input.col_mean_into(&mut self.mean_buf);
                input.col_var_into(&self.mean_buf, &mut self.var_buf);
                let cache = self.cache.get_or_insert_with(Cache::default);
                cache.inv_std.clear();
                cache
                    .inv_std
                    .extend(self.var_buf.iter().map(|&v| 1.0 / (v + self.eps).sqrt()));
                cache.xhat.resize(rows, cols);
                for r in 0..rows {
                    let xr = input.row(r);
                    let hr = cache.xhat.row_mut(r);
                    for c in 0..cols {
                        hr[c] = (xr[c] - self.mean_buf[c]) * cache.inv_std[c];
                    }
                }
                for r in 0..rows {
                    let hr = cache.xhat.row(r);
                    let yr = out.row_mut(r);
                    for c in 0..cols {
                        yr[c] = self.gamma[c] * hr[c] + self.beta[c];
                    }
                }
                for c in 0..cols {
                    self.running_mean[c] = self.momentum * self.running_mean[c]
                        + (1.0 - self.momentum) * self.mean_buf[c];
                    self.running_var[c] = self.momentum * self.running_var[c]
                        + (1.0 - self.momentum) * self.var_buf[c];
                }
            }
            Mode::Eval => {
                // var_buf doubles as the eval inv_std scratch.
                self.var_buf.clear();
                self.var_buf
                    .extend(self.running_var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()));
                for r in 0..rows {
                    let xr = input.row(r);
                    let yr = out.row_mut(r);
                    for c in 0..cols {
                        yr[c] = self.gamma[c] * (xr[c] - self.running_mean[c]) * self.var_buf[c]
                            + self.beta[c];
                    }
                }
            }
        }
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        // Take the cache out so its borrow cannot conflict with the parameter
        // gradients below; it is put back, so repeated backward passes stay
        // legal.
        let cache = self
            .cache
            .take()
            .expect("BatchNorm::backward without a train-mode forward");
        let (rows, cols) = grad_output.shape();
        let n = rows as f32;

        // Accumulate parameter grads and the two per-feature reductions.
        self.red_dxhat.clear();
        self.red_dxhat.resize(cols, 0.0);
        self.red_dxhat_xhat.clear();
        self.red_dxhat_xhat.resize(cols, 0.0);
        for r in 0..rows {
            let g = grad_output.row(r);
            let h = cache.xhat.row(r);
            for c in 0..cols {
                self.grad_beta[c] += g[c];
                self.grad_gamma[c] += g[c] * h[c];
                let dxhat = g[c] * self.gamma[c];
                self.red_dxhat[c] += dxhat;
                self.red_dxhat_xhat[c] += dxhat * h[c];
            }
        }

        // dx = inv_std/N * (N*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
        grad_input.resize(rows, cols);
        for r in 0..rows {
            let g = grad_output.row(r);
            let h = cache.xhat.row(r);
            let o = grad_input.row_mut(r);
            for c in 0..cols {
                let dxhat = g[c] * self.gamma[c];
                o[c] = cache.inv_std[c] / n
                    * (n * dxhat - self.red_dxhat[c] - h[c] * self.red_dxhat_xhat[c]);
            }
        }
        self.cache = Some(cache);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        f(&mut self.gamma, &self.grad_gamma);
        f(&mut self.beta, &self.grad_beta);
    }

    fn zero_grad(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn name(&self) -> &'static str {
        "batchnorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn train_normalizes_batch() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_rows(&[&[0.0, 100.0], &[2.0, 300.0], &[4.0, 500.0]]);
        let y = bn.forward(&x, Mode::Train);
        let mean = y.col_mean();
        let var = y.col_var(&mean);
        for m in mean {
            assert!(m.abs() < 1e-4);
        }
        for v in var {
            assert!((v - 1.0).abs() < 0.05, "var {v}"); // eps skews slightly
        }
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm::with_options(1, 0.5, 1e-3);
        let x = Matrix::from_rows(&[&[10.0], &[30.0]]); // mean 20, var 100
        let _ = bn.forward(&x, Mode::Train);
        assert!((bn.running_mean()[0] - 10.0).abs() < 1e-4); // 0.5*0 + 0.5*20
        assert!((bn.running_var()[0] - 50.5).abs() < 1e-3); // 0.5*1 + 0.5*100
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::with_options(1, 0.0, 1e-3); // momentum 0: adopt batch stats
        let x = Matrix::from_rows(&[&[10.0], &[30.0]]);
        let _ = bn.forward(&x, Mode::Train);
        // Now running stats are exactly the batch stats; eval on the batch
        // mean should produce ~0.
        let y = bn.forward(&Matrix::from_rows(&[&[20.0]]), Mode::Eval);
        assert!(y.get(0, 0).abs() < 1e-4);
    }

    #[test]
    fn gradients_check_numerically() {
        check_layer_gradients(Box::new(BatchNorm::new(5)), 6, 5, 0xbeef);
    }

    #[test]
    fn param_count_is_two_per_feature() {
        let mut bn = BatchNorm::new(7);
        assert_eq!(Layer::param_count(&mut bn), 14);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn invalid_momentum_rejected() {
        let _ = BatchNorm::with_options(2, 1.0, 1e-3);
    }
}
