//! From-scratch neural-network substrate for the ACOBE reproduction.
//!
//! The paper implements its detector with TensorFlow 2.0 Keras; this crate
//! re-implements exactly the pieces that implementation uses — and nothing
//! more — in pure Rust:
//!
//! * [`tensor`] — dense row-major `f32` matrices with a cache-blocked,
//!   register-tiled matmul,
//! * [`pool`] — the persistent worker pool the kernels run on
//!   (`ACOBE_NN_THREADS` sets its size),
//! * [`dense`] — fully-connected layers (`tf.keras.layers.Dense`),
//! * [`batchnorm`] — batch normalization with Keras train/eval semantics,
//! * [`activation`] — ReLU / Sigmoid,
//! * [`loss`] — mean-squared error,
//! * [`optim`] — Adadelta (the paper's optimizer), Adam, SGD,
//! * [`autoencoder`] — the 512-256-128-64 mirrored autoencoder,
//! * [`train`] — mini-batch training with shuffling and early stopping,
//! * [`gradcheck`] — numerical gradient verification used by the test suite.
//!
//! # Examples
//!
//! ```
//! use acobe_nn::autoencoder::{Autoencoder, AutoencoderConfig};
//! use acobe_nn::optim::Adadelta;
//! use acobe_nn::tensor::Matrix;
//! use acobe_nn::train::{fit_autoencoder, TrainConfig};
//!
//! let mut ae = Autoencoder::new(AutoencoderConfig::small(8));
//! let data = Matrix::filled(32, 8, 0.5);
//! let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
//! let report = fit_autoencoder(&mut ae, &data, &cfg, &mut Adadelta::new());
//! assert_eq!(report.epochs_run, 2);
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod autoencoder;
pub mod batchnorm;
pub mod dense;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod net;
pub mod optim;
pub mod pool;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use layer::{Layer, Mode};
pub use net::Sequential;
pub use optim::{Adadelta, Adam, Optimizer, Sgd};
pub use serialize::{load_json, save_json, SavedAutoencoder};
pub use tensor::Matrix;
pub use train::{
    fit_autoencoder, fit_autoencoder_observed, NoopObserver, ProgressObserver, TrainConfig,
    TrainReport,
};
