//! Model persistence: save/load trained autoencoders as JSON or as the
//! compact binary block embedded in v3 checkpoints.
//!
//! Serializes the builder configuration, every trainable parameter, and every
//! state buffer (BatchNorm running statistics) so a reloaded model scores
//! identically in inference mode.

use crate::autoencoder::{Autoencoder, AutoencoderConfig};
use acobe_obs::binio::{ByteReader, ByteWriter};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// A serializable snapshot of a trained [`Autoencoder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedAutoencoder {
    /// The builder configuration (architecture, seed, activations).
    pub config: AutoencoderConfig,
    /// Flattened trainable parameters in visitation order.
    pub params: Vec<f32>,
    /// Flattened state buffers (running statistics) in visitation order.
    pub buffers: Vec<f32>,
}

/// Error returned when loading a saved model fails.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON syntax/shape failure.
    Json(serde_json::Error),
    /// Parameter or buffer vector does not match the architecture.
    ShapeMismatch {
        /// What didn't fit.
        what: &'static str,
        /// How many scalars the architecture expects.
        expected: usize,
        /// How many the snapshot carried.
        found: usize,
    },
    /// Binary snapshot failed to decode (truncation, bad magic, bad version).
    Corrupt(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Json(e) => write!(f, "invalid model json: {e}"),
            LoadError::ShapeMismatch { what, expected, found } => {
                write!(f, "{what} shape mismatch: expected {expected}, found {found}")
            }
            LoadError::Corrupt(msg) => write!(f, "corrupt model snapshot: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<serde_json::Error> for LoadError {
    fn from(e: serde_json::Error) -> Self {
        LoadError::Json(e)
    }
}

/// Snapshots a (possibly trained) autoencoder.
pub fn snapshot(ae: &mut Autoencoder) -> SavedAutoencoder {
    SavedAutoencoder {
        config: ae.config().clone(),
        params: ae.net_mut().state_vector(),
        buffers: ae.net_mut().buffer_vector(),
    }
}

/// Restores an autoencoder from a snapshot.
///
/// # Errors
///
/// Returns [`LoadError::ShapeMismatch`] when the snapshot does not fit its
/// own declared architecture.
pub fn restore(saved: &SavedAutoencoder) -> Result<Autoencoder, LoadError> {
    let mut ae = Autoencoder::new(saved.config.clone());
    ae.net_mut()
        .load_state_vector(&saved.params)
        .map_err(|expected| LoadError::ShapeMismatch {
            what: "parameters",
            expected,
            found: saved.params.len(),
        })?;
    ae.net_mut()
        .load_buffer_vector(&saved.buffers)
        .map_err(|expected| LoadError::ShapeMismatch {
            what: "buffers",
            expected,
            found: saved.buffers.len(),
        })?;
    Ok(ae)
}

/// Magic prefix of a binary [`SavedAutoencoder`] block.
pub const MODEL_MAGIC: &[u8; 4] = b"ACNN";
/// Version of the binary model block layout.
pub const MODEL_BINARY_VERSION: u8 = 1;

impl SavedAutoencoder {
    /// Encodes the snapshot as a compact self-describing binary block:
    /// `"ACNN"`, a version byte, the JSON-encoded [`AutoencoderConfig`]
    /// (length-prefixed — configs are tiny and schema-flexible), then the
    /// parameter and buffer vectors as raw little-endian f32 arrays.
    ///
    /// Weights stay full-precision: model parameters are not quantized,
    /// so a decoded model scores bit-identically.
    pub fn to_bytes(&self) -> Vec<u8> {
        let config_json =
            serde_json::to_string(&self.config).expect("autoencoder config serializes");
        let mut w = ByteWriter::with_capacity(
            16 + config_json.len() + 4 * (self.params.len() + self.buffers.len()),
        );
        w.put_bytes(MODEL_MAGIC);
        w.put_u8(MODEL_BINARY_VERSION);
        w.put_str(&config_json);
        w.put_f32s(&self.params);
        w.put_f32s(&self.buffers);
        w.into_bytes()
    }

    /// Decodes a block written by [`SavedAutoencoder::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Corrupt`] on truncation, bad magic, an unknown
    /// version, or trailing garbage; the architecture itself is validated
    /// later by [`restore`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LoadError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(4).map_err(|e| LoadError::Corrupt(e.to_string()))?;
        if magic != MODEL_MAGIC {
            return Err(LoadError::Corrupt(format!(
                "bad model magic {magic:02x?} (expected {MODEL_MAGIC:02x?})"
            )));
        }
        let version = r.get_u8().map_err(|e| LoadError::Corrupt(e.to_string()))?;
        if version != MODEL_BINARY_VERSION {
            return Err(LoadError::Corrupt(format!(
                "unsupported model block version {version} (this build reads {MODEL_BINARY_VERSION})"
            )));
        }
        let config_json = r
            .get_str("model config")
            .map_err(|e| LoadError::Corrupt(e.to_string()))?;
        let config: AutoencoderConfig = serde_json::from_str(&config_json)?;
        let params = r
            .get_f32s("model params")
            .map_err(|e| LoadError::Corrupt(e.to_string()))?;
        let buffers = r
            .get_f32s("model buffers")
            .map_err(|e| LoadError::Corrupt(e.to_string()))?;
        if !r.is_done() {
            return Err(LoadError::Corrupt(format!(
                "{} trailing bytes after model block",
                r.remaining()
            )));
        }
        Ok(SavedAutoencoder { config, params, buffers })
    }
}

/// Saves a model as compact JSON.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_json<P: AsRef<Path>>(ae: &mut Autoencoder, path: P) -> Result<(), LoadError> {
    let saved = snapshot(ae);
    let json = serde_json::to_string(&saved)?;
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, json)?;
    Ok(())
}

/// Loads a model saved by [`save_json`].
///
/// # Errors
///
/// Propagates filesystem, JSON and shape failures.
pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Autoencoder, LoadError> {
    let json = fs::read_to_string(path)?;
    let saved: SavedAutoencoder = serde_json::from_str(&json)?;
    restore(&saved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tensor::Matrix;
    use crate::train::{fit_autoencoder, TrainConfig};

    fn trained_model() -> (Autoencoder, Matrix) {
        let mut ae = Autoencoder::new(AutoencoderConfig::small(6).with_seed(3));
        let data = Matrix::from_vec(
            64,
            6,
            (0..64 * 6).map(|i| ((i * 37) % 100) as f32 / 100.0).collect(),
        );
        let cfg = TrainConfig { epochs: 4, batch_size: 16, seed: 9, early_stop_rel: None };
        fit_autoencoder(&mut ae, &data, &cfg, &mut Adam::new(1e-2));
        (ae, data)
    }

    #[test]
    fn snapshot_restore_identical_scores() {
        let (mut ae, data) = trained_model();
        let saved = snapshot(&mut ae);
        let mut restored = restore(&saved).unwrap();
        // Running stats (buffers) must carry over — eval-mode scores match.
        assert_eq!(
            ae.reconstruction_errors(&data),
            restored.reconstruction_errors(&data)
        );
    }

    #[test]
    fn json_roundtrip_on_disk() {
        let (mut ae, data) = trained_model();
        let path = std::env::temp_dir().join("acobe_nn_test_model.json");
        save_json(&mut ae, &path).unwrap();
        let mut loaded = load_json(&path).unwrap();
        assert_eq!(
            ae.reconstruction_errors(&data),
            loaded.reconstruction_errors(&data)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_shapes_rejected() {
        let (mut ae, _) = trained_model();
        let mut saved = snapshot(&mut ae);
        saved.params.pop();
        match restore(&saved) {
            Err(LoadError::ShapeMismatch { what: "parameters", .. }) => {}
            other => panic!("expected parameter mismatch, got {other:?}"),
        }
        let mut saved = snapshot(&mut ae);
        saved.buffers.push(0.0);
        assert!(matches!(
            restore(&saved),
            Err(LoadError::ShapeMismatch { what: "buffers", .. })
        ));
    }

    #[test]
    fn binary_roundtrip_bit_identical() {
        let (mut ae, data) = trained_model();
        let saved = snapshot(&mut ae);
        let bytes = saved.to_bytes();
        // Far smaller than the JSON encoding it replaces inside checkpoints.
        assert!(bytes.len() < serde_json::to_string(&saved).unwrap().len() / 2);
        let decoded = SavedAutoencoder::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, saved);
        let mut restored = restore(&decoded).unwrap();
        assert_eq!(
            ae.reconstruction_errors(&data),
            restored.reconstruction_errors(&data)
        );
    }

    #[test]
    fn binary_corruption_is_typed() {
        let (mut ae, _) = trained_model();
        let bytes = snapshot(&mut ae).to_bytes();
        // Truncation.
        assert!(matches!(
            SavedAutoencoder::from_bytes(&bytes[..bytes.len() / 2]),
            Err(LoadError::Corrupt(_))
        ));
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            SavedAutoencoder::from_bytes(&bad),
            Err(LoadError::Corrupt(_))
        ));
        // Future version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(
            SavedAutoencoder::from_bytes(&bad),
            Err(LoadError::Corrupt(_))
        ));
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            SavedAutoencoder::from_bytes(&bad),
            Err(LoadError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            load_json("/definitely/not/here.json"),
            Err(LoadError::Io(_))
        ));
    }
}
