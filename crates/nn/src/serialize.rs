//! Model persistence: save/load trained autoencoders as JSON.
//!
//! Serializes the builder configuration, every trainable parameter, and every
//! state buffer (BatchNorm running statistics) so a reloaded model scores
//! identically in inference mode.

use crate::autoencoder::{Autoencoder, AutoencoderConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// A serializable snapshot of a trained [`Autoencoder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedAutoencoder {
    /// The builder configuration (architecture, seed, activations).
    pub config: AutoencoderConfig,
    /// Flattened trainable parameters in visitation order.
    pub params: Vec<f32>,
    /// Flattened state buffers (running statistics) in visitation order.
    pub buffers: Vec<f32>,
}

/// Error returned when loading a saved model fails.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON syntax/shape failure.
    Json(serde_json::Error),
    /// Parameter or buffer vector does not match the architecture.
    ShapeMismatch {
        /// What didn't fit.
        what: &'static str,
        /// How many scalars the architecture expects.
        expected: usize,
        /// How many the snapshot carried.
        found: usize,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Json(e) => write!(f, "invalid model json: {e}"),
            LoadError::ShapeMismatch { what, expected, found } => {
                write!(f, "{what} shape mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<serde_json::Error> for LoadError {
    fn from(e: serde_json::Error) -> Self {
        LoadError::Json(e)
    }
}

/// Snapshots a (possibly trained) autoencoder.
pub fn snapshot(ae: &mut Autoencoder) -> SavedAutoencoder {
    SavedAutoencoder {
        config: ae.config().clone(),
        params: ae.net_mut().state_vector(),
        buffers: ae.net_mut().buffer_vector(),
    }
}

/// Restores an autoencoder from a snapshot.
///
/// # Errors
///
/// Returns [`LoadError::ShapeMismatch`] when the snapshot does not fit its
/// own declared architecture.
pub fn restore(saved: &SavedAutoencoder) -> Result<Autoencoder, LoadError> {
    let mut ae = Autoencoder::new(saved.config.clone());
    ae.net_mut()
        .load_state_vector(&saved.params)
        .map_err(|expected| LoadError::ShapeMismatch {
            what: "parameters",
            expected,
            found: saved.params.len(),
        })?;
    ae.net_mut()
        .load_buffer_vector(&saved.buffers)
        .map_err(|expected| LoadError::ShapeMismatch {
            what: "buffers",
            expected,
            found: saved.buffers.len(),
        })?;
    Ok(ae)
}

/// Saves a model as pretty JSON.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_json<P: AsRef<Path>>(ae: &mut Autoencoder, path: P) -> Result<(), LoadError> {
    let saved = snapshot(ae);
    let json = serde_json::to_string(&saved)?;
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, json)?;
    Ok(())
}

/// Loads a model saved by [`save_json`].
///
/// # Errors
///
/// Propagates filesystem, JSON and shape failures.
pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Autoencoder, LoadError> {
    let json = fs::read_to_string(path)?;
    let saved: SavedAutoencoder = serde_json::from_str(&json)?;
    restore(&saved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tensor::Matrix;
    use crate::train::{fit_autoencoder, TrainConfig};

    fn trained_model() -> (Autoencoder, Matrix) {
        let mut ae = Autoencoder::new(AutoencoderConfig::small(6).with_seed(3));
        let data = Matrix::from_vec(
            64,
            6,
            (0..64 * 6).map(|i| ((i * 37) % 100) as f32 / 100.0).collect(),
        );
        let cfg = TrainConfig { epochs: 4, batch_size: 16, seed: 9, early_stop_rel: None };
        fit_autoencoder(&mut ae, &data, &cfg, &mut Adam::new(1e-2));
        (ae, data)
    }

    #[test]
    fn snapshot_restore_identical_scores() {
        let (mut ae, data) = trained_model();
        let saved = snapshot(&mut ae);
        let mut restored = restore(&saved).unwrap();
        // Running stats (buffers) must carry over — eval-mode scores match.
        assert_eq!(
            ae.reconstruction_errors(&data),
            restored.reconstruction_errors(&data)
        );
    }

    #[test]
    fn json_roundtrip_on_disk() {
        let (mut ae, data) = trained_model();
        let path = std::env::temp_dir().join("acobe_nn_test_model.json");
        save_json(&mut ae, &path).unwrap();
        let mut loaded = load_json(&path).unwrap();
        assert_eq!(
            ae.reconstruction_errors(&data),
            loaded.reconstruction_errors(&data)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_shapes_rejected() {
        let (mut ae, _) = trained_model();
        let mut saved = snapshot(&mut ae);
        saved.params.pop();
        match restore(&saved) {
            Err(LoadError::ShapeMismatch { what: "parameters", .. }) => {}
            other => panic!("expected parameter mismatch, got {other:?}"),
        }
        let mut saved = snapshot(&mut ae);
        saved.buffers.push(0.0);
        assert!(matches!(
            restore(&saved),
            Err(LoadError::ShapeMismatch { what: "buffers", .. })
        ));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            load_json("/definitely/not/here.json"),
            Err(LoadError::Io(_))
        ));
    }
}
