//! Dense row-major `f32` matrices with the operations backprop needs.
//!
//! This is deliberately a small, purpose-built tensor: 2-D only, `f32` like
//! the paper's TensorFlow implementation. The matrix multiply is a cache-
//! blocked, register-tiled kernel running on the persistent worker pool in
//! [`crate::pool`]; one kernel serves `matmul`, `t_matmul` and `matmul_t`
//! through strided views, so the transposed products never materialize a
//! transpose.
//!
//! The pre-optimization kernel survives as [`Matrix::matmul_reference`] and
//! friends: the equivalence tests and the `nn-bench` binary use it as the
//! before/after baseline.

use crate::pool::{self, WorkerPool};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Threshold (in multiply-accumulate ops) above which matmul uses the pool.
const PAR_THRESHOLD: usize = 1 << 20;

/// Cache-block heights/widths of the GEMM macro kernel: `MC×KC` packed A
/// blocks and `KC×NC` packed B panels.
const MC: usize = 64;
const KC: usize = 256;
const NC: usize = 256;

/// Register tile of the micro kernel: `MR` rows × `NR` columns of C held in
/// accumulators across a KC-deep sweep.
const MR: usize = 4;
const NR: usize = 16;

/// Which matmul implementation the process uses.
///
/// The default is the blocked kernel; [`Kernel::Reference`] switches every
/// product back to the pre-optimization loops so benchmarks can measure the
/// before/after on identical workloads. The switch is process-global — flip
/// it only from single-purpose binaries (benches), never from library code
/// or concurrent tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Cache-blocked, register-tiled kernel on the persistent pool.
    Blocked,
    /// The original naive triple loop with per-call scoped threads.
    Reference,
}

static KERNEL: AtomicU8 = AtomicU8::new(0);

/// Selects the process-global matmul implementation (see [`Kernel`]).
pub fn set_kernel(kernel: Kernel) {
    KERNEL.store(kernel as u8, Ordering::Relaxed);
}

/// The currently selected matmul implementation.
pub fn current_kernel() -> Kernel {
    if KERNEL.load(Ordering::Relaxed) == Kernel::Reference as u8 {
        Kernel::Reference
    } else {
        Kernel::Blocked
    }
}

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use acobe_nn::tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural seed for reusable buffers that
    /// [`Matrix::resize`] grows on first use.
    fn default() -> Self {
        Matrix { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// An `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes to `rows × cols`, zero-filled, reusing the existing
    /// allocation when its capacity suffices. The reusable-buffer workhorse:
    /// steady-state training never reallocates through it.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `src`, reusing the existing allocation when
    /// its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A new matrix keeping only the rows whose indices are in `idx`.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &ri in idx {
            data.extend_from_slice(self.row(ri));
        }
        Matrix { rows: idx.len(), cols: self.cols, data }
    }

    /// Fills `out` with the rows whose indices are in `idx`, reusing its
    /// allocation — the mini-batch gather of the training loop.
    pub fn select_rows_into(&self, idx: &[usize], out: &mut Matrix) {
        out.rows = idx.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(idx.len() * self.cols);
        for &ri in idx {
            out.data.extend_from_slice(self.row(ri));
        }
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self × rhs` into a reused output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        out.resize(self.rows, rhs.cols);
        match current_kernel() {
            Kernel::Blocked => gemm(
                pool::global(),
                View::normal(self),
                View::normal(rhs),
                &mut out.data,
                false,
            ),
            Kernel::Reference => reference_matmul_into(
                &self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data,
            ),
        }
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// `selfᵀ × rhs` into a reused output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        out.resize(self.cols, rhs.cols);
        self.t_matmul_dispatch(rhs, &mut out.data);
    }

    /// `out += selfᵀ × rhs` — the gradient accumulation `dW += xᵀ g` without
    /// a temporary.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows` or `out` is not `self.cols × rhs.cols`.
    pub fn t_matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        assert_eq!(out.shape(), (self.cols, rhs.cols), "t_matmul_acc output shape mismatch");
        match current_kernel() {
            Kernel::Blocked => gemm(
                pool::global(),
                View::transposed(self),
                View::normal(rhs),
                &mut out.data,
                true,
            ),
            Kernel::Reference => {
                reference_t_matmul_into(self, rhs, &mut out.data);
            }
        }
    }

    fn t_matmul_dispatch(&self, rhs: &Matrix, out: &mut [f32]) {
        match current_kernel() {
            Kernel::Blocked => {
                gemm(pool::global(), View::transposed(self), View::normal(rhs), out, false)
            }
            Kernel::Reference => reference_t_matmul_into(self, rhs, out),
        }
    }

    /// `self × rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_t_into(rhs, &mut out);
        out
    }

    /// `self × rhsᵀ` into a reused output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        out.resize(self.rows, rhs.rows);
        match current_kernel() {
            Kernel::Blocked => gemm(
                pool::global(),
                View::normal(self),
                View::transposed(rhs),
                &mut out.data,
                false,
            ),
            Kernel::Reference => reference_matmul_t_into(self, rhs, &mut out.data),
        }
    }

    /// `self × rhs` through the pre-optimization kernel, regardless of the
    /// global [`Kernel`] selection. Baseline for tests and `nn-bench`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        reference_matmul_into(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data);
        out
    }

    /// `selfᵀ × rhs` through the pre-optimization kernel (see
    /// [`Matrix::matmul_reference`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        reference_t_matmul_into(self, rhs, &mut out.data);
        out
    }

    /// `self × rhsᵀ` through the pre-optimization kernel (see
    /// [`Matrix::matmul_reference`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        reference_matmul_t_into(self, rhs, &mut out.data);
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `vec` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.cols`.
    pub fn add_row_vec(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.cols, "row-vector length mismatch");
        for r in 0..self.rows {
            for (x, &v) in self.row_mut(r).iter_mut().zip(vec) {
                *x += v;
            }
        }
    }

    /// Element-wise sum into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product into a reused output buffer.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data
            .extend(self.data.iter().zip(&rhs.data).map(|(a, b)| a * b));
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Applies `f` to every element into a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element into a reused output buffer.
    pub fn map_into<F: Fn(f32) -> f32>(&self, f: F, out: &mut Matrix) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend(self.data.iter().map(|&x| f(x)));
    }

    /// Per-column mean (length `cols`).
    pub fn col_mean(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.cols];
        self.col_mean_into(&mut mean);
        mean
    }

    /// Per-column mean into a reused buffer (resized to `cols`).
    pub fn col_mean_into(&self, mean: &mut Vec<f32>) {
        mean.clear();
        mean.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (m, &x) in mean.iter_mut().zip(self.row(r)) {
                *m += x;
            }
        }
        let n = self.rows.max(1) as f32;
        for m in mean {
            *m /= n;
        }
    }

    /// Per-column (population) variance given a pre-computed mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean.len() != self.cols`.
    pub fn col_var(&self, mean: &[f32]) -> Vec<f32> {
        let mut var = vec![0.0f32; self.cols];
        self.col_var_into(mean, &mut var);
        var
    }

    /// Per-column variance into a reused buffer (resized to `cols`).
    ///
    /// # Panics
    ///
    /// Panics if `mean.len() != self.cols`.
    pub fn col_var_into(&self, mean: &[f32], var: &mut Vec<f32>) {
        assert_eq!(mean.len(), self.cols, "mean length mismatch");
        var.clear();
        var.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for ((v, &m), &x) in var.iter_mut().zip(mean).zip(self.row(r)) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows.max(1) as f32;
        for v in var {
            *v /= n;
        }
    }

    /// Per-column sum (length `cols`).
    pub fn col_sum(&self) -> Vec<f32> {
        let mut sum = vec![0.0f32; self.cols];
        self.col_sum_acc(&mut sum);
        sum
    }

    /// Accumulates per-column sums into `acc` (`acc[c] += Σ_r self[r][c]`) —
    /// the bias-gradient update without a temporary.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.cols`.
    pub fn col_sum_acc(&self, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.cols, "accumulator length mismatch");
        for r in 0..self.rows {
            for (s, &x) in acc.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
    }

    /// Mean of squared elements per row — the per-sample reconstruction error
    /// when called on `pred - target`.
    pub fn row_mean_sq(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter().map(|x| x * x).sum::<f32>() / self.cols.max(1) as f32
            })
            .collect()
    }

    /// Frobenius-norm squared.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

// ---------------------------------------------------------------------------
// The blocked kernel.
// ---------------------------------------------------------------------------

/// A read-only strided 2-D view over a flat buffer: element `(r, c)` lives at
/// `data[r * rs + c * cs]`. `View::normal` is the matrix itself;
/// `View::transposed` swaps the strides so the same GEMM kernel computes
/// `AᵀB` and `ABᵀ` without materializing anything.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    rs: usize,
    cs: usize,
}

impl<'a> View<'a> {
    fn normal(m: &'a Matrix) -> Self {
        View { data: &m.data, rows: m.rows, cols: m.cols, rs: m.cols, cs: 1 }
    }

    fn transposed(m: &'a Matrix) -> Self {
        View { data: &m.data, rows: m.cols, cols: m.rows, rs: 1, cs: m.cols }
    }

    /// The sub-view of rows `r0..r1`.
    fn row_range(&self, r0: usize, r1: usize) -> View<'a> {
        View {
            data: &self.data[r0 * self.rs..],
            rows: r1 - r0,
            cols: self.cols,
            rs: self.rs,
            cs: self.cs,
        }
    }
}

thread_local! {
    /// Per-thread packing buffers (A block, B panel). Pool workers are
    /// persistent, so steady-state GEMM never allocates.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `out = A × B` (or `out += A × B` when `acc`), `A` is `m×k`, `B` is `k×n`,
/// `out` row-major `m×n`. Rows of `out` are partitioned across the pool; each
/// row's contributions are accumulated in ascending-`k` order regardless of
/// the partition, so results are identical for every thread count.
fn gemm(pool: &WorkerPool, a: View<'_>, b: View<'_>, out: &mut [f32], acc: bool) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!(a.cols, b.rows, "gemm inner-dimension mismatch");
    debug_assert_eq!(out.len(), m * n, "gemm output size mismatch");
    if !acc {
        out.fill(0.0);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let lanes = if m * k * n < PAR_THRESHOLD { 1 } else { pool.threads() };
    let ranges = pool::chunk_ranges(m, lanes);
    if ranges.len() <= 1 {
        PACK_BUFS.with(|bufs| {
            let (pa, pb) = &mut *bufs.borrow_mut();
            gemm_rows(a, b, out, pa, pb);
        });
        return;
    }
    let mut jobs: Vec<pool::Job<'_>> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for &(r0, r1) in &ranges {
        let (chunk, tail) = rest.split_at_mut((r1 - r0) * n);
        rest = tail;
        let a_rows = a.row_range(r0, r1);
        jobs.push(Box::new(move || {
            PACK_BUFS.with(|bufs| {
                let (pa, pb) = &mut *bufs.borrow_mut();
                gemm_rows(a_rows, b, chunk, pa, pb);
            });
        }));
    }
    pool.scope(jobs);
}

/// The serial macro kernel: sweeps KC-deep slices of A/B, packing each into
/// contiguous buffers, and accumulates into `out` (`m×n`, row-major).
fn gemm_rows(a: View<'_>, b: View<'_>, out: &mut [f32], pa: &mut Vec<f32>, pb: &mut Vec<f32>) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    pa.resize(MC * KC, 0.0);
    pb.resize(KC * NC, 0.0);
    let mut kk = 0;
    while kk < k {
        let kc = KC.min(k - kk);
        let mut jj = 0;
        while jj < n {
            let nc = NC.min(n - jj);
            pack_b(b, kk, kc, jj, nc, pb);
            let mut ii = 0;
            while ii < m {
                let mc = MC.min(m - ii);
                pack_a(a, ii, mc, kk, kc, pa);
                macro_block(pa, pb, out, ii, mc, kc, jj, nc, n);
                ii += mc;
            }
            jj += nc;
        }
        kk += kc;
    }
}

/// Packs `a[ii..ii+mc, kk..kk+kc]` row-major into `pa` (row stride `kc`).
fn pack_a(a: View<'_>, ii: usize, mc: usize, kk: usize, kc: usize, pa: &mut [f32]) {
    if a.cs == 1 {
        for i in 0..mc {
            let src = &a.data[(ii + i) * a.rs + kk..][..kc];
            pa[i * kc..(i + 1) * kc].copy_from_slice(src);
        }
    } else {
        for i in 0..mc {
            let row_base = (ii + i) * a.rs + kk * a.cs;
            for (k, dst) in pa[i * kc..(i + 1) * kc].iter_mut().enumerate() {
                *dst = a.data[row_base + k * a.cs];
            }
        }
    }
}

/// Packs `b[kk..kk+kc, jj..jj+nc]` row-major into `pb` (row stride `nc`).
fn pack_b(b: View<'_>, kk: usize, kc: usize, jj: usize, nc: usize, pb: &mut [f32]) {
    if b.cs == 1 {
        for k in 0..kc {
            let src = &b.data[(kk + k) * b.rs + jj..][..nc];
            pb[k * nc..(k + 1) * nc].copy_from_slice(src);
        }
    } else {
        for k in 0..kc {
            let row_base = (kk + k) * b.rs + jj * b.cs;
            for (j, dst) in pb[k * nc..(k + 1) * nc].iter_mut().enumerate() {
                *dst = b.data[row_base + j * b.cs];
            }
        }
    }
}

/// Register-tiled inner kernel: MR×NR tiles of C kept in accumulators across
/// the kc-deep sweep, then added to `out` once per tile. Dispatches to the
/// AVX2+FMA specialization when the CPU supports it.
#[allow(clippy::too_many_arguments)]
fn macro_block(
    pa: &[f32],
    pb: &[f32],
    out: &mut [f32],
    ii: usize,
    mc: usize,
    kc: usize,
    jj: usize,
    nc: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if fma::available() {
        // SAFETY: `available()` checked avx2+fma support at runtime.
        unsafe { fma::macro_block(pa, pb, out, ii, mc, kc, jj, nc, n) };
        return;
    }
    let mut i = 0;
    while i + MR <= mc {
        let mut j = 0;
        while j + NR <= nc {
            micro_tile(pa, pb, out, ii + i, i, kc, jj + j, j, nc, n);
            j += NR;
        }
        if j < nc {
            edge_tile(pa, pb, out, ii + i, i, MR, kc, jj + j, j, nc - j, nc, n);
        }
        i += MR;
    }
    if i < mc {
        edge_tile(pa, pb, out, ii + i, i, mc - i, kc, jj, 0, nc, nc, n);
    }
}

/// The hot MR×NR tile: 64 scalar accumulators the compiler keeps in vector
/// registers; one B tile load feeds MR rows per `k` step.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_tile(
    pa: &[f32],
    pb: &[f32],
    out: &mut [f32],
    out_row: usize,
    a_row: usize,
    kc: usize,
    out_col: usize,
    b_col: usize,
    nc: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let a0 = &pa[a_row * kc..(a_row + 1) * kc];
    let a1 = &pa[(a_row + 1) * kc..(a_row + 2) * kc];
    let a2 = &pa[(a_row + 2) * kc..(a_row + 3) * kc];
    let a3 = &pa[(a_row + 3) * kc..(a_row + 4) * kc];
    for k in 0..kc {
        let bt = &pb[k * nc + b_col..k * nc + b_col + NR];
        let (v0, v1, v2, v3) = (a0[k], a1[k], a2[k], a3[k]);
        for j in 0..NR {
            acc[0][j] += v0 * bt[j];
            acc[1][j] += v1 * bt[j];
            acc[2][j] += v2 * bt[j];
            acc[3][j] += v3 * bt[j];
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let dst = &mut out[(out_row + r) * n + out_col..(out_row + r) * n + out_col + NR];
        for j in 0..NR {
            dst[j] += acc_row[j];
        }
    }
}

/// Fringe tile of arbitrary `mr × jw` size (row/column remainders).
#[allow(clippy::too_many_arguments)]
fn edge_tile(
    pa: &[f32],
    pb: &[f32],
    out: &mut [f32],
    out_row: usize,
    a_row: usize,
    mr: usize,
    kc: usize,
    out_col: usize,
    b_col: usize,
    jw: usize,
    nc: usize,
    n: usize,
) {
    // Accumulate locally (starting from zero) and add to `out` once, exactly
    // like `micro_tile`: a row must produce bit-identical sums whether it
    // lands in a full tile or on the fringe, or row partitioning would change
    // results with the thread count.
    let mut acc = [0.0f32; NC];
    for r in 0..mr {
        let ar = &pa[(a_row + r) * kc..(a_row + r + 1) * kc];
        acc[..jw].fill(0.0);
        for (k, &av) in ar.iter().enumerate() {
            let bt = &pb[k * nc + b_col..k * nc + b_col + jw];
            for j in 0..jw {
                acc[j] += av * bt[j];
            }
        }
        let dst = &mut out[(out_row + r) * n + out_col..(out_row + r) * n + out_col + jw];
        for j in 0..jw {
            dst[j] += acc[j];
        }
    }
}

/// AVX2+FMA specialization of the macro kernel, selected at runtime. The
/// portable kernel above stays the fallback for other CPUs (and under
/// `ACOBE_NN_NO_SIMD=1`). Fused multiply-adds round differently from the
/// scalar mul-then-add sequence, but every path keeps the same per-element
/// accumulation order — local accumulator swept in ascending `k`, one final
/// add into `out` — so results are still identical for every thread count.
#[cfg(target_arch = "x86_64")]
mod fma {
    use super::{MR, NC, NR};

    /// True when the CPU supports the specialization (cached; honours the
    /// `ACOBE_NN_NO_SIMD=1` escape hatch).
    pub fn available() -> bool {
        static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            !matches!(std::env::var("ACOBE_NN_NO_SIMD").as_deref(), Ok("1"))
                && std::is_x86_feature_detected!("avx2")
                && std::is_x86_feature_detected!("fma")
        })
    }

    /// # Safety
    ///
    /// Caller must have verified avx2+fma support (see [`available`]).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn macro_block(
        pa: &[f32],
        pb: &[f32],
        out: &mut [f32],
        ii: usize,
        mc: usize,
        kc: usize,
        jj: usize,
        nc: usize,
        n: usize,
    ) {
        let mut i = 0;
        while i + MR <= mc {
            let mut j = 0;
            while j + NR <= nc {
                micro_tile(pa, pb, out, ii + i, i, kc, jj + j, j, nc, n);
                j += NR;
            }
            if j < nc {
                edge_tile(pa, pb, out, ii + i, i, MR, kc, jj + j, j, nc - j, nc, n);
            }
            i += MR;
        }
        if i < mc {
            edge_tile(pa, pb, out, ii + i, i, mc - i, kc, jj, 0, nc, nc, n);
        }
    }

    /// The MR×NR tile as 8 YMM accumulators: two 8-lane vectors per row, one
    /// B-panel load shared by all four rows per `k` step.
    ///
    /// # Safety
    ///
    /// Requires avx2+fma; tile bounds are guaranteed by [`macro_block`]'s
    /// loop structure (`a_row + MR <= mc <= MC`, `b_col + NR <= nc <= NC`).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn micro_tile(
        pa: &[f32],
        pb: &[f32],
        out: &mut [f32],
        out_row: usize,
        a_row: usize,
        kc: usize,
        out_col: usize,
        b_col: usize,
        nc: usize,
        n: usize,
    ) {
        use std::arch::x86_64::*;
        debug_assert!((a_row + MR) * kc <= pa.len());
        debug_assert!(kc * nc <= pb.len() && b_col + NR <= nc);
        let a0 = pa.as_ptr().add(a_row * kc);
        let a1 = pa.as_ptr().add((a_row + 1) * kc);
        let a2 = pa.as_ptr().add((a_row + 2) * kc);
        let a3 = pa.as_ptr().add((a_row + 3) * kc);
        let mut acc = [_mm256_setzero_ps(); 2 * MR];
        for k in 0..kc {
            let bp = pb.as_ptr().add(k * nc + b_col);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            let v0 = _mm256_set1_ps(*a0.add(k));
            acc[0] = _mm256_fmadd_ps(v0, b0, acc[0]);
            acc[1] = _mm256_fmadd_ps(v0, b1, acc[1]);
            let v1 = _mm256_set1_ps(*a1.add(k));
            acc[2] = _mm256_fmadd_ps(v1, b0, acc[2]);
            acc[3] = _mm256_fmadd_ps(v1, b1, acc[3]);
            let v2 = _mm256_set1_ps(*a2.add(k));
            acc[4] = _mm256_fmadd_ps(v2, b0, acc[4]);
            acc[5] = _mm256_fmadd_ps(v2, b1, acc[5]);
            let v3 = _mm256_set1_ps(*a3.add(k));
            acc[6] = _mm256_fmadd_ps(v3, b0, acc[6]);
            acc[7] = _mm256_fmadd_ps(v3, b1, acc[7]);
        }
        for r in 0..MR {
            let dst = out.as_mut_ptr().add((out_row + r) * n + out_col);
            _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), acc[2 * r]));
            let dst8 = dst.add(8);
            _mm256_storeu_ps(dst8, _mm256_add_ps(_mm256_loadu_ps(dst8), acc[2 * r + 1]));
        }
    }

    /// Fringe tile. Scalar `f32::mul_add` compiles to `vfmadd*ss` under the
    /// `fma` target feature, so every element sees the exact op sequence of
    /// the vector kernel regardless of which tile it lands in.
    ///
    /// # Safety
    ///
    /// Requires avx2+fma (for the target-feature promise only — the body is
    /// safe Rust).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn edge_tile(
        pa: &[f32],
        pb: &[f32],
        out: &mut [f32],
        out_row: usize,
        a_row: usize,
        mr: usize,
        kc: usize,
        out_col: usize,
        b_col: usize,
        jw: usize,
        nc: usize,
        n: usize,
    ) {
        let mut acc = [0.0f32; NC];
        for r in 0..mr {
            let ar = &pa[(a_row + r) * kc..(a_row + r + 1) * kc];
            acc[..jw].fill(0.0);
            for (k, &av) in ar.iter().enumerate() {
                let bt = &pb[k * nc + b_col..k * nc + b_col + jw];
                for j in 0..jw {
                    acc[j] = av.mul_add(bt[j], acc[j]);
                }
            }
            let dst = &mut out[(out_row + r) * n + out_col..(out_row + r) * n + out_col + jw];
            for j in 0..jw {
                dst[j] += acc[j];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The pre-optimization kernel, kept verbatim as the before/after baseline.
// ---------------------------------------------------------------------------

/// `out += a(rows×inner) × b(inner×cols)` — the original kernel: naive
/// row-chunk threading with per-call `std::thread::scope` spawns and a
/// hard-coded cap of 8 threads.
fn reference_matmul_into(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    let work = rows * inner * cols;
    let threads = reference_threads();
    if work < PAR_THRESHOLD || threads <= 1 || rows < 2 {
        reference_matmul_serial(a, inner, b, cols, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let a_chunks = a.chunks(chunk_rows * inner);
        let out_chunks = out.chunks_mut(chunk_rows * cols);
        for (a_chunk, out_chunk) in a_chunks.zip(out_chunks) {
            s.spawn(move || {
                reference_matmul_serial(a_chunk, inner, b, cols, out_chunk);
            });
        }
    });
}

fn reference_matmul_serial(a: &[f32], inner: usize, b: &[f32], cols: usize, out: &mut [f32]) {
    let rows = a.len() / inner.max(1);
    for i in 0..rows {
        let arow = &a[i * inner..(i + 1) * inner];
        let orow = &mut out[i * cols..(i + 1) * cols];
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[k * cols..(k + 1) * cols];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out += selfᵀ × rhs` — the original serial loop.
fn reference_t_matmul_into(m: &Matrix, rhs: &Matrix, out: &mut [f32]) {
    for k in 0..m.rows {
        let arow = m.row(k);
        let brow = rhs.row(k);
        for (i, &a) in arow.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let orow = &mut out[i * rhs.cols..(i + 1) * rhs.cols];
            for (o, &b) in orow.iter_mut().zip(brow) {
                *o += a * b;
            }
        }
    }
}

/// `out = self × rhsᵀ` — the original serial loop.
fn reference_matmul_t_into(m: &Matrix, rhs: &Matrix, out: &mut [f32]) {
    for i in 0..m.rows {
        let arow = m.row(i);
        let orow = &mut out[i * rhs.rows..(i + 1) * rhs.rows];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = rhs.row(j);
            let mut acc = 0.0f32;
            for (&a, &b) in arow.iter().zip(brow) {
                acc += a * b;
            }
            *o = acc;
        }
    }
}

fn reference_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} != {y}");
        }
    }

    fn pattern(rows: usize, cols: usize, mul: usize, add: usize, modulus: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| ((i * mul + add) % modulus) as f32 * 0.01 - 0.3)
                .collect(),
        )
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_and_zero() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 3.0], &[0.5, 0.0, -1.0]]);
        approx(&a.matmul(&Matrix::eye(3)), &a, 0.0);
        let z = a.matmul(&Matrix::zeros(3, 4));
        assert_eq!(z, Matrix::zeros(2, 4));
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        // aᵀ(2x3)ᵀ=3x2 × b(2x2)
        approx(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-6);
        let c = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.0]]);
        approx(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-6);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Large enough to cross PAR_THRESHOLD.
        let n = 128;
        let a = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|i| ((i * 37 + 11) % 97) as f32 * 0.01).collect(),
        );
        let b = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|i| ((i * 53 + 7) % 89) as f32 * 0.01 - 0.4).collect(),
        );
        let big = a.matmul(&b);
        // Serial reference
        let mut reference = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                let av = a.get(i, k);
                for j in 0..n {
                    reference.data_mut()[i * n + j] += av * b.get(k, j);
                }
            }
        }
        approx(&big, &reference, 1e-3);
    }

    /// The blocked kernel must agree with the pre-optimization kernel on
    /// shapes that stress every fringe: rows below the thread/tile count,
    /// non-divisible chunk sizes, single rows/columns, and sizes straddling
    /// every blocking constant.
    #[test]
    fn blocked_kernel_matches_reference_on_awkward_shapes() {
        let shapes: &[(usize, usize, usize)] = &[
            (1, 1, 1),
            (1, 7, 5),       // single row
            (2, 3, 70),      // rows < any thread count
            (3, 257, 17),    // k crosses KC with remainder 1
            (5, 64, 259),    // n crosses NC with remainder 3
            (7, 19, 16),     // n == NR exactly
            (4, 300, 4),     // m == MR exactly
            (65, 13, 31),    // m crosses MC with remainder 1
            (66, 129, 258),  // everything non-divisible
            (130, 512, 100), // k == 2·KC exactly
        ];
        for &(m, k, n) in shapes {
            let a = pattern(m, k, 37, 11, 97);
            let b = pattern(k, n, 53, 7, 89);
            let blocked = a.matmul(&b);
            let reference = a.matmul_reference(&b);
            let tol = 1e-5 * (k as f32).max(1.0);
            for (i, (x, y)) in blocked.data().iter().zip(reference.data()).enumerate() {
                assert!(
                    (x - y).abs() <= tol,
                    "({m}x{k}x{n}) element {i}: blocked {x} vs reference {y}"
                );
            }
        }
    }

    /// Fused transposed products agree with the reference loops on fringe
    /// shapes too (strided packing paths).
    #[test]
    fn transposed_kernels_match_reference_on_awkward_shapes() {
        for &(m, k, n) in &[(1usize, 3usize, 2usize), (5, 65, 17), (33, 129, 66), (4, 16, 16)] {
            // t_matmul: self is k×m (shared leading dim with rhs k×n).
            let a = pattern(k, m, 29, 3, 83);
            let b = pattern(k, n, 31, 5, 79);
            let tol = 1e-5 * (k as f32).max(1.0);
            for (x, y) in a.t_matmul(&b).data().iter().zip(a.t_matmul_reference(&b).data()) {
                assert!((x - y).abs() <= tol, "t_matmul {m}x{k}x{n}: {x} vs {y}");
            }
            // matmul_t: self m×k, rhs n×k.
            let a = pattern(m, k, 41, 1, 73);
            let b = pattern(n, k, 43, 9, 71);
            for (x, y) in a.matmul_t(&b).data().iter().zip(a.matmul_t_reference(&b).data()) {
                assert!((x - y).abs() <= tol, "matmul_t {m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    /// `inner == 0` products are empty sums: a well-defined zero matrix.
    #[test]
    fn zero_inner_dimension_yields_zeros() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(a.matmul(&b), Matrix::zeros(3, 4));
        let at = Matrix::zeros(0, 3);
        assert_eq!(at.t_matmul(&Matrix::zeros(0, 4)), Matrix::zeros(3, 4));
        let mt = Matrix::zeros(3, 0);
        assert_eq!(mt.matmul_t(&Matrix::zeros(4, 0)), Matrix::zeros(3, 4));
    }

    /// Identical inputs give bit-identical outputs across repeated runs and
    /// across explicit pool sizes: row partitioning never changes a row's
    /// accumulation order.
    #[test]
    fn blocked_kernel_is_deterministic_across_pool_sizes() {
        let a = pattern(67, 140, 37, 11, 97);
        let b = pattern(140, 130, 53, 7, 89);
        let first = a.matmul(&b);
        for _ in 0..3 {
            assert_eq!(a.matmul(&b), first, "repeated runs must be bit-identical");
        }
        // Force multi-lane execution through private pools of varying sizes
        // on a shape too small for the global threshold.
        let mut outs = Vec::new();
        for threads in [1usize, 2, 3, 5] {
            let local = WorkerPool::new(threads);
            let mut out = vec![0.0f32; 67 * 130];
            gemm(&local, View::normal(&a), View::normal(&b), &mut out, false);
            outs.push(out);
        }
        for out in &outs[1..] {
            assert_eq!(out, &outs[0], "thread count must not change results");
        }
        assert_eq!(outs[0], first.data(), "pool-size runs must match the global-pool result");
    }

    #[test]
    fn t_matmul_acc_accumulates() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = Matrix::from_rows(&[&[0.5, 0.0], &[1.0, -1.0]]);
        let mut acc = Matrix::filled(2, 2, 10.0);
        x.t_matmul_acc(&g, &mut acc);
        let expected = x.t_matmul(&g).add(&Matrix::filled(2, 2, 10.0));
        approx(&acc, &expected, 1e-6);
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let a = pattern(6, 9, 37, 11, 97);
        let b = pattern(9, 5, 53, 7, 89);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Stale contents must not leak into the next product.
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let c = pattern(6, 5, 3, 2, 7);
        let mut h = Matrix::default();
        out.hadamard_into(&c, &mut h);
        assert_eq!(h, out.hadamard(&c));
        let mut mapped = Matrix::default();
        c.map_into(|v| v * 2.0, &mut mapped);
        assert_eq!(mapped, c.map(|v| v * 2.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 1.0]]));
        assert_eq!(a.sub(&b), Matrix::from_rows(&[&[-2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -2.0]]));
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(a.map(|x| x + 1.0), Matrix::from_rows(&[&[2.0, 3.0]]));
    }

    #[test]
    fn column_stats() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        assert_eq!(a.col_mean(), vec![2.0, 20.0]);
        assert_eq!(a.col_var(&[2.0, 20.0]), vec![1.0, 100.0]);
        assert_eq!(a.col_sum(), vec![4.0, 40.0]);
    }

    #[test]
    fn row_mean_sq() {
        let a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        assert_eq!(a.row_mean_sq(), vec![12.5, 0.0]);
    }

    #[test]
    fn select_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn select_rows_into_reuses_buffer() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut batch = Matrix::default();
        a.select_rows_into(&[2, 0], &mut batch);
        assert_eq!(batch, a.select_rows(&[2, 0]));
        let cap = batch.data.capacity();
        a.select_rows_into(&[1], &mut batch);
        assert_eq!(batch, a.select_rows(&[1]));
        assert_eq!(batch.data.capacity(), cap, "smaller batch must not reallocate");
        a.select_rows_into(&[], &mut batch);
        assert_eq!(batch.shape(), (0, 2));
    }

    #[test]
    fn resize_and_copy_from_reuse_allocations() {
        let mut m = Matrix::filled(4, 4, 7.0);
        let cap = m.data.capacity();
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data.iter().all(|&x| x == 0.0), "resize must zero");
        assert_eq!(m.data.capacity(), cap);
        let src = Matrix::from_rows(&[&[1.0, 2.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
        assert_eq!(m.data.capacity(), cap);
    }

    #[test]
    fn add_row_vec() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        prop::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// (AB)ᵀ = BᵀAᵀ.
        #[test]
        fn transpose_of_product((a, b) in (matrix(4, 6), matrix(6, 3))) {
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }

        /// Transpose is an involution.
        #[test]
        fn transpose_involution(a in matrix(5, 7)) {
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        /// A(B + C) = AB + AC.
        #[test]
        fn matmul_distributes((a, b, c) in (matrix(3, 4), matrix(4, 5), matrix(4, 5))) {
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }

        /// The fused transposed products agree with explicit transposes.
        #[test]
        fn fused_transposed_products((a, b) in (matrix(4, 3), matrix(4, 5))) {
            let fused = a.t_matmul(&b);
            let explicit = a.transpose().matmul(&b);
            for (x, y) in fused.data().iter().zip(explicit.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Blocked and reference kernels agree on arbitrary data.
        #[test]
        fn blocked_matches_reference((a, b) in (matrix(9, 33), matrix(33, 21))) {
            let blocked = a.matmul(&b);
            let reference = a.matmul_reference(&b);
            for (x, y) in blocked.data().iter().zip(reference.data()) {
                prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
            }
        }

        /// Per-row mean-square is non-negative and zero only for zero rows.
        #[test]
        fn row_mean_sq_nonnegative(a in matrix(6, 4)) {
            for (r, &ms) in a.row_mean_sq().iter().enumerate() {
                prop_assert!(ms >= 0.0);
                if ms == 0.0 {
                    prop_assert!(a.row(r).iter().all(|&x| x == 0.0));
                }
            }
        }

        /// Column mean of a one-row matrix is the row itself.
        #[test]
        fn col_mean_single_row(a in matrix(1, 8)) {
            prop_assert_eq!(a.col_mean(), a.row(0).to_vec());
        }
    }
}
