//! Dense row-major `f32` matrices with the operations backprop needs.
//!
//! This is deliberately a small, purpose-built tensor: 2-D only, `f32` like
//! the paper's TensorFlow implementation, with a threaded matrix multiply for
//! the large batches the autoencoders train on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Threshold (in multiply-accumulate ops) above which matmul uses threads.
const PAR_THRESHOLD: usize = 1 << 20;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use acobe_nn::tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// An `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A new matrix keeping only the rows whose indices are in `idx`.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (oi, &ri) in idx.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(ri));
        }
        out
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        matmul_into(
            &self.data, self.rows, self.cols,
            &rhs.data, rhs.cols,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        // out[i][j] = sum_k self[k][i] * rhs[k][j]
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = rhs.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `vec` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.cols`.
    pub fn add_row_vec(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.cols, "row-vector length mismatch");
        for r in 0..self.rows {
            for (x, &v) in self.row_mut(r).iter_mut().zip(vec) {
                *x += v;
            }
        }
    }

    /// Element-wise sum into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Applies `f` to every element into a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Per-column mean (length `cols`).
    pub fn col_mean(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (m, &x) in mean.iter_mut().zip(self.row(r)) {
                *m += x;
            }
        }
        let n = self.rows.max(1) as f32;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }

    /// Per-column (population) variance given a pre-computed mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean.len() != self.cols`.
    pub fn col_var(&self, mean: &[f32]) -> Vec<f32> {
        assert_eq!(mean.len(), self.cols, "mean length mismatch");
        let mut var = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for ((v, &m), &x) in var.iter_mut().zip(mean).zip(self.row(r)) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows.max(1) as f32;
        for v in &mut var {
            *v /= n;
        }
        var
    }

    /// Per-column sum (length `cols`).
    pub fn col_sum(&self) -> Vec<f32> {
        let mut sum = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sum.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
        sum
    }

    /// Mean of squared elements per row — the per-sample reconstruction error
    /// when called on `pred - target`.
    pub fn row_mean_sq(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter().map(|x| x * x).sum::<f32>() / self.cols.max(1) as f32
            })
            .collect()
    }

    /// Frobenius-norm squared.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// `out += a(rows×inner) × b(inner×cols)`, threading across row chunks when
/// the operation is large enough to pay for it.
fn matmul_into(a: &[f32], rows: usize, inner: usize, b: &[f32], cols: usize, out: &mut [f32]) {
    let work = rows * inner * cols;
    let threads = available_threads();
    if work < PAR_THRESHOLD || threads <= 1 || rows < 2 {
        matmul_serial(a, inner, b, cols, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let a_chunks = a.chunks(chunk_rows * inner);
        let out_chunks = out.chunks_mut(chunk_rows * cols);
        for (a_chunk, out_chunk) in a_chunks.zip(out_chunks) {
            s.spawn(move || {
                matmul_serial(a_chunk, inner, b, cols, out_chunk);
            });
        }
    });
}

fn matmul_serial(a: &[f32], inner: usize, b: &[f32], cols: usize, out: &mut [f32]) {
    let rows = a.len() / inner.max(1);
    for i in 0..rows {
        let arow = &a[i * inner..(i + 1) * inner];
        let orow = &mut out[i * cols..(i + 1) * cols];
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[k * cols..(k + 1) * cols];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} != {y}");
        }
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_and_zero() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 3.0], &[0.5, 0.0, -1.0]]);
        approx(&a.matmul(&Matrix::eye(3)), &a, 0.0);
        let z = a.matmul(&Matrix::zeros(3, 4));
        assert_eq!(z, Matrix::zeros(2, 4));
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        // aᵀ(2x3)ᵀ=3x2 × b(2x2)
        approx(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-6);
        let c = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.0]]);
        approx(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-6);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Large enough to cross PAR_THRESHOLD.
        let n = 128;
        let a = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|i| ((i * 37 + 11) % 97) as f32 * 0.01).collect(),
        );
        let b = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|i| ((i * 53 + 7) % 89) as f32 * 0.01 - 0.4).collect(),
        );
        let big = a.matmul(&b);
        // Serial reference
        let mut reference = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                let av = a.get(i, k);
                for j in 0..n {
                    reference.data_mut()[i * n + j] += av * b.get(k, j);
                }
            }
        }
        approx(&big, &reference, 1e-3);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 1.0]]));
        assert_eq!(a.sub(&b), Matrix::from_rows(&[&[-2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -2.0]]));
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(a.map(|x| x + 1.0), Matrix::from_rows(&[&[2.0, 3.0]]));
    }

    #[test]
    fn column_stats() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        assert_eq!(a.col_mean(), vec![2.0, 20.0]);
        assert_eq!(a.col_var(&[2.0, 20.0]), vec![1.0, 100.0]);
        assert_eq!(a.col_sum(), vec![4.0, 40.0]);
    }

    #[test]
    fn row_mean_sq() {
        let a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        assert_eq!(a.row_mean_sq(), vec![12.5, 0.0]);
    }

    #[test]
    fn select_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn add_row_vec() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        prop::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// (AB)ᵀ = BᵀAᵀ.
        #[test]
        fn transpose_of_product((a, b) in (matrix(4, 6), matrix(6, 3))) {
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }

        /// Transpose is an involution.
        #[test]
        fn transpose_involution(a in matrix(5, 7)) {
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        /// A(B + C) = AB + AC.
        #[test]
        fn matmul_distributes((a, b, c) in (matrix(3, 4), matrix(4, 5), matrix(4, 5))) {
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }

        /// The fused transposed products agree with explicit transposes.
        #[test]
        fn fused_transposed_products((a, b) in (matrix(4, 3), matrix(4, 5))) {
            let fused = a.t_matmul(&b);
            let explicit = a.transpose().matmul(&b);
            for (x, y) in fused.data().iter().zip(explicit.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Per-row mean-square is non-negative and zero only for zero rows.
        #[test]
        fn row_mean_sq_nonnegative(a in matrix(6, 4)) {
            for (r, &ms) in a.row_mean_sq().iter().enumerate() {
                prop_assert!(ms >= 0.0);
                if ms == 0.0 {
                    prop_assert!(a.row(r).iter().all(|&x| x == 0.0));
                }
            }
        }

        /// Column mean of a one-row matrix is the row itself.
        #[test]
        fn col_mean_single_row(a in matrix(1, 8)) {
            prop_assert_eq!(a.col_mean(), a.row(0).to_vec());
        }
    }
}
