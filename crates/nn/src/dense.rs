//! Fully-connected (dense) layer.

use crate::init::glorot_uniform;
use crate::layer::{Layer, Mode};
use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// A fully-connected layer computing `y = xW + b`.
///
/// `W` is `(in_dim × out_dim)`, matching `tf.keras.layers.Dense`.
///
/// # Examples
///
/// ```
/// use acobe_nn::dense::Dense;
/// use acobe_nn::layer::{Layer, Mode};
/// use acobe_nn::tensor::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(4, 2, &mut rng);
/// let x = Matrix::zeros(3, 4);
/// let y = layer.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a layer with Glorot-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Dense {
            w: glorot_uniform(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Creates a layer from explicit weights and bias (for tests/loading).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.cols()`.
    pub fn from_parts(weights: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), weights.cols(), "bias width mismatch");
        let (r, c) = weights.shape();
        Dense {
            w: weights,
            b: bias,
            grad_w: Matrix::zeros(r, c),
            grad_b: vec![0.0; c],
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }
}

impl Layer for Dense {
    fn forward_into(&mut self, input: &Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(input.cols(), self.in_dim(), "dense input width mismatch");
        input.matmul_into(&self.w, out);
        out.add_row_vec(&self.b);
        if mode == Mode::Train {
            match &mut self.cached_input {
                Some(cache) => cache.copy_from(input),
                None => self.cached_input = Some(input.clone()),
            }
        }
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        // Take the cache out so its borrow cannot conflict with grad_w below;
        // it is put back, so repeated backward passes stay legal.
        let x = self
            .cached_input
            .take()
            .expect("Dense::backward without a train-mode forward");
        // dW += xᵀ g ; db += column sums of g ; dx = g Wᵀ
        x.t_matmul_acc(grad_output, &mut self.grad_w);
        grad_output.col_sum_acc(&mut self.grad_b);
        grad_output.matmul_t_into(&self.w, grad_input);
        self.cached_input = Some(x);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        f(self.w.data_mut_internal(), self.grad_w.data_internal());
        f(&mut self.b, &self.grad_b);
    }

    fn zero_grad(&mut self) {
        self.grad_w.data_mut_internal().fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.out_dim()
    }
}

// Private data-access helpers so visit_params can borrow w and grad_w
// simultaneously without exposing extra public API.
impl Matrix {
    pub(crate) fn data_internal(&self) -> &[f32] {
        self.data()
    }
    pub(crate) fn data_mut_internal(&mut self) -> &mut [f32] {
        self.data_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        let mut layer = Dense::from_parts(w, vec![0.5, -0.5]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y, Matrix::from_rows(&[&[4.5, 6.5]]));
    }

    #[test]
    fn gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(7);
        let layer = Dense::new(5, 4, &mut rng);
        check_layer_gradients(Box::new(layer), 3, 5, 0x51ed);
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Matrix::filled(2, 3, 1.0);
        let y = layer.forward(&x, Mode::Train);
        let _ = layer.backward(&Matrix::filled(2, 2, 1.0));
        let mut saw_nonzero = false;
        layer.visit_params(&mut |_, g| saw_nonzero |= g.iter().any(|&v| v != 0.0));
        assert!(saw_nonzero);
        layer.zero_grad();
        layer.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
        assert_eq!(y.shape(), (2, 2));
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Dense::new(3, 2, &mut rng);
        assert_eq!(Layer::param_count(&mut layer), 3 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "without a train-mode forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Dense::new(3, 2, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }
}
