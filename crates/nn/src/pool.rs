//! A persistent worker pool for data-parallel kernels.
//!
//! The matrix kernels in [`crate::tensor`] used to spawn fresh
//! `std::thread::scope` threads on every large multiply, paying thread
//! creation and teardown on the hottest path of training. This module keeps
//! one process-wide pool of long-lived workers instead: threads are spawned
//! once on first use and then fed closures over a channel, so a matmul
//! dispatch is one enqueue per row chunk.
//!
//! The pool size defaults to the number of available cores and can be
//! overridden with the `ACOBE_NN_THREADS` environment variable (read once, at
//! first use). `ACOBE_NN_THREADS=1` disables worker threads entirely — every
//! job runs inline on the caller.
//!
//! # Examples
//!
//! ```
//! let pool = acobe_nn::pool::global();
//! let mut parts = vec![0u64; 4];
//! pool.scope(
//!     parts
//!         .iter_mut()
//!         .enumerate()
//!         .map(|(i, p)| -> acobe_nn::pool::Job<'_> { Box::new(move || *p = i as u64 + 1) })
//!         .collect(),
//! );
//! assert_eq!(parts.iter().sum::<u64>(), 10);
//! ```

use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

/// A borrowed unit of work handed to [`WorkerPool::scope`].
pub type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    tx: Sender<StaticJob>,
    threads: usize,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool, created on first use with
/// [`configured_threads`] workers.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(|| WorkerPool::new(configured_threads()))
}

/// The pool size the environment asks for: `ACOBE_NN_THREADS` when set to a
/// positive integer, otherwise the number of available cores.
pub fn configured_threads() -> usize {
    match std::env::var("ACOBE_NN_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid ACOBE_NN_THREADS={v:?} (want a positive integer)");
                default_threads()
            }
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl WorkerPool {
    /// Creates a pool that runs jobs on `threads` lanes: the caller plus
    /// `threads - 1` background workers. `threads == 1` means no background
    /// workers at all (everything runs inline in [`WorkerPool::scope`]).
    ///
    /// Prefer [`global`] outside tests and benchmarks — pools are never torn
    /// down, so creating many of them leaks threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker thread cannot be spawned.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let (tx, rx) = unbounded::<StaticJob>();
        for i in 0..threads - 1 {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("acobe-nn-{i}"))
                .spawn(move || {
                    // Jobs arrive pre-wrapped in catch_unwind, so a panicking
                    // job never kills the worker.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn acobe-nn worker");
        }
        WorkerPool { tx, threads }
    }

    /// Number of parallel lanes (caller + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job to completion before returning; jobs may borrow from
    /// the caller's stack. The first job runs inline on the calling thread,
    /// the rest are distributed to the workers.
    ///
    /// # Panics
    ///
    /// If any job panics, the panic is captured and re-raised here once all
    /// jobs have finished.
    pub fn scope(&self, jobs: Vec<Job<'_>>) {
        if jobs.is_empty() {
            return;
        }
        if self.threads == 1 || jobs.len() == 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let wg = WaitGroup::new();
        let mut jobs = jobs.into_iter();
        let first = jobs.next().expect("non-empty");
        for job in jobs {
            let wg = wg.clone();
            let slot = &panic_slot;
            let wrapped: Job<'_> = Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    *slot.lock().unwrap() = Some(payload);
                }
                drop(wg);
            });
            // SAFETY: `wg.wait()` below blocks until every wrapped job has
            // run and dropped its WaitGroup clone, so the borrows captured by
            // `job` (and the `&panic_slot` reference) strictly outlive their
            // use on the worker threads.
            let wrapped: StaticJob = unsafe { std::mem::transmute(wrapped) };
            self.tx.send(wrapped).expect("worker pool channel closed");
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(first)) {
            *panic_slot.lock().unwrap() = Some(payload);
        }
        wg.wait();
        if let Some(payload) = panic_slot.into_inner().unwrap() {
            resume_unwind(payload);
        }
    }

    /// Splits `total` items into at most `threads` contiguous chunks of
    /// near-equal size, returning the `(start, end)` ranges. Never returns
    /// empty chunks; returns an empty vector when `total == 0`.
    pub fn chunk_ranges(&self, total: usize) -> Vec<(usize, usize)> {
        chunk_ranges(total, self.threads)
    }
}

/// Splits `0..total` into at most `lanes` contiguous, near-equal,
/// non-empty ranges.
pub fn chunk_ranges(total: usize, lanes: usize) -> Vec<(usize, usize)> {
    if total == 0 || lanes == 0 {
        return Vec::new();
    }
    let lanes = lanes.min(total);
    let base = total / lanes;
    let extra = total % lanes;
    let mut out = Vec::with_capacity(lanes);
    let mut start = 0;
    for lane in 0..lanes {
        let len = base + usize::from(lane < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_job_and_blocks() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..64)
            .map(|_| -> Job<'_> {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.scope(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn jobs_may_borrow_mutably_and_disjointly() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0usize; 10];
        let jobs: Vec<Job<'_>> = data
            .chunks_mut(3)
            .enumerate()
            .map(|(i, chunk)| -> Job<'_> {
                Box::new(move || {
                    for x in chunk.iter_mut() {
                        *x = i + 1;
                    }
                })
            })
            .collect();
        pool.scope(jobs);
        assert!(data.iter().all(|&x| x > 0));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let mut hits = 0;
        pool.scope(vec![Box::new(|| hits += 1) as Job<'_>]);
        assert_eq!(hits, 1);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(vec![
                Box::new(|| {}) as Job<'_>,
                Box::new(|| panic!("boom")) as Job<'_>,
            ]);
        }));
        assert!(result.is_err());
        // The pool must still work after a panicking job.
        let counter = AtomicUsize::new(0);
        pool.scope(
            (0..8)
                .map(|_| -> Job<'_> {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect(),
        );
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn chunk_ranges_cover_without_overlap() {
        for total in [0usize, 1, 2, 3, 7, 8, 9, 100] {
            for lanes in [1usize, 2, 3, 4, 8, 16] {
                let ranges = chunk_ranges(total, lanes);
                let mut covered = 0;
                let mut prev_end = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, prev_end, "gap at {s} (total {total}, lanes {lanes})");
                    assert!(e > s, "empty chunk (total {total}, lanes {lanes})");
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, total);
                assert!(ranges.len() <= lanes.max(1));
            }
        }
    }

    #[test]
    fn global_pool_respects_default() {
        assert!(global().threads() >= 1);
    }
}
