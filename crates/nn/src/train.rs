//! Mini-batch training loop for autoencoders.

use crate::autoencoder::Autoencoder;
use crate::layer::Mode;
use crate::loss::mse_into;
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Stop early when an epoch's mean loss improves less than this relative
    /// amount over the previous epoch (`None` disables early stopping).
    pub early_stop_rel: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 30, batch_size: 64, seed: 0x7ea1, early_stop_rel: None }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock duration of each epoch in milliseconds, index-aligned
    /// with `epoch_losses`.
    #[serde(default)]
    pub epoch_ms: Vec<f64>,
    /// Number of epochs actually run (≤ configured, with early stopping).
    pub epochs_run: usize,
    /// Whether early stopping ended training before the configured epochs.
    #[serde(default)]
    pub stopped_early: bool,
}

impl TrainReport {
    /// Final epoch's loss, or `None` when no epochs ran.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }

    /// Total wall-clock training time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.epoch_ms.iter().sum()
    }
}

/// Receives training telemetry as [`fit_autoencoder_observed`] runs.
///
/// All methods default to no-ops so implementors pick the events they care
/// about. The pipeline uses this to feed per-epoch losses and durations
/// into `acobe-obs` histograms and the `-v` training trace.
pub trait ProgressObserver {
    /// Called after each mini-batch with the forward- and backward-pass
    /// wall-clock durations in milliseconds — kernel-level timing for
    /// metrics sinks. Fires once per batch, so keep implementations cheap.
    fn on_batch(&mut self, _forward_ms: f64, _backward_ms: f64) {}

    /// Called after each epoch with its 0-based index, mean loss, and
    /// wall-clock duration in milliseconds.
    fn on_epoch(&mut self, _epoch: usize, _loss: f32, _elapsed_ms: f64) {}

    /// Called once when training finishes, with the final report.
    fn on_complete(&mut self, _report: &TrainReport) {}
}

/// A [`ProgressObserver`] that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl ProgressObserver for NoopObserver {}

/// Trains `ae` to reconstruct the rows of `data` (targets = inputs).
///
/// # Panics
///
/// Panics if `data` is empty, its width disagrees with the autoencoder, or
/// `batch_size == 0`.
pub fn fit_autoencoder(
    ae: &mut Autoencoder,
    data: &Matrix,
    config: &TrainConfig,
    optimizer: &mut dyn Optimizer,
) -> TrainReport {
    fit_autoencoder_observed(ae, data, config, optimizer, &mut NoopObserver)
}

/// Like [`fit_autoencoder`], reporting per-epoch telemetry to `observer`.
///
/// # Panics
///
/// Panics if `data` is empty, its width disagrees with the autoencoder, or
/// `batch_size == 0`.
pub fn fit_autoencoder_observed(
    ae: &mut Autoencoder,
    data: &Matrix,
    config: &TrainConfig,
    optimizer: &mut dyn Optimizer,
    observer: &mut dyn ProgressObserver,
) -> TrainReport {
    assert!(data.rows() > 0, "empty training set");
    assert_eq!(data.cols(), ae.config().input_dim, "data width mismatch");
    assert!(config.batch_size > 0, "batch_size must be positive");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut indices: Vec<usize> = (0..data.rows()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut epoch_ms = Vec::with_capacity(config.epochs);
    let mut stopped_early = false;

    // Long-lived batch and gradient buffers: after the first batch of the
    // first epoch, the loop allocates nothing.
    let mut batch = Matrix::default();
    let mut grad = Matrix::default();

    for epoch in 0..config.epochs {
        let epoch_start = Instant::now();
        indices.shuffle(&mut rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(config.batch_size) {
            data.select_rows_into(chunk, &mut batch);
            let net = ae.net_mut();
            net.zero_grad();
            let fwd_start = Instant::now();
            let recon = net.forward_scratch(&batch, Mode::Train);
            let forward_ms = fwd_start.elapsed().as_secs_f64() * 1e3;
            let loss = mse_into(recon, &batch, &mut grad);
            let bwd_start = Instant::now();
            net.backward_scratch(&grad);
            let backward_ms = bwd_start.elapsed().as_secs_f64() * 1e3;
            optimizer.step(net);
            observer.on_batch(forward_ms, backward_ms);
            total += loss as f64;
            batches += 1;
        }
        let mean = (total / batches.max(1) as f64) as f32;
        epoch_losses.push(mean);
        let elapsed_ms = epoch_start.elapsed().as_secs_f64() * 1e3;
        epoch_ms.push(elapsed_ms);
        observer.on_epoch(epoch, mean, elapsed_ms);

        if let Some(rel) = config.early_stop_rel {
            if epoch > 0 {
                let prev = epoch_losses[epoch - 1];
                if prev.is_finite() && prev > 0.0 && (prev - mean) / prev < rel {
                    stopped_early = true;
                    break;
                }
            }
        }
    }
    let epochs_run = epoch_losses.len();
    let report = TrainReport { epoch_losses, epoch_ms, epochs_run, stopped_early };
    observer.on_complete(&report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::AutoencoderConfig;
    use crate::optim::{Adadelta, Adam};
    use rand::Rng;

    fn structured_data(n: usize, seed: u64) -> Matrix {
        // Rank-2 structure in 8 dims: easy for a bottleneck to capture.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 8);
        for r in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            for c in 0..8 {
                let v = if c % 2 == 0 { a } else { b } * (1.0 + c as f32 / 8.0) * 0.5;
                m.set(r, c, v);
            }
        }
        m
    }

    #[test]
    fn training_reduces_loss_adadelta() {
        let mut ae = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let data = structured_data(128, 99);
        let cfg = TrainConfig { epochs: 15, batch_size: 32, seed: 1, early_stop_rel: None };
        let report = fit_autoencoder(&mut ae, &data, &cfg, &mut Adadelta::new());
        assert_eq!(report.epochs_run, 15);
        assert!(!report.stopped_early);
        assert_eq!(report.epoch_ms.len(), 15);
        assert!(report.total_ms() > 0.0);
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0] * 0.7,
            "losses: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn anomalies_score_higher_after_training() {
        let mut ae = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let data = structured_data(256, 7);
        let cfg = TrainConfig { epochs: 60, batch_size: 32, seed: 2, early_stop_rel: None };
        fit_autoencoder(&mut ae, &data, &cfg, &mut Adam::new(1e-2));
        let normal_scores = ae.reconstruction_errors(&structured_data(32, 1234));
        // Anomaly: breaks the rank-2 structure entirely.
        let mut anomaly = Matrix::zeros(1, 8);
        for c in 0..8 {
            anomaly.set(0, c, if c == 3 { 1.0 } else { 0.0 });
        }
        let anomaly_score = ae.reconstruction_errors(&anomaly)[0];
        let mean_normal: f32 = normal_scores.iter().sum::<f32>() / normal_scores.len() as f32;
        assert!(
            anomaly_score > mean_normal * 3.0,
            "anomaly {anomaly_score} vs normal mean {mean_normal}"
        );
    }

    #[test]
    fn early_stopping_halts() {
        let mut ae = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let data = structured_data(64, 99);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 64,
            seed: 1,
            early_stop_rel: Some(0.5), // very aggressive: stop quickly
        };
        let report = fit_autoencoder(&mut ae, &data, &cfg, &mut Adadelta::new());
        assert!(report.epochs_run < 200);
        assert!(report.stopped_early, "the aggressive threshold must trip");
        assert_eq!(report.epoch_ms.len(), report.epochs_run);
    }

    #[test]
    fn empty_report_has_no_final_loss() {
        let report = TrainReport {
            epoch_losses: Vec::new(),
            epoch_ms: Vec::new(),
            epochs_run: 0,
            stopped_early: false,
        };
        assert_eq!(report.final_loss(), None);
        assert_eq!(report.total_ms(), 0.0);
    }

    #[test]
    fn observer_sees_every_epoch() {
        struct Recorder {
            epochs: Vec<(usize, f32)>,
            batches: usize,
            completed: bool,
        }
        impl ProgressObserver for Recorder {
            fn on_batch(&mut self, forward_ms: f64, backward_ms: f64) {
                assert!(forward_ms >= 0.0 && backward_ms >= 0.0);
                self.batches += 1;
            }
            fn on_epoch(&mut self, epoch: usize, loss: f32, elapsed_ms: f64) {
                assert!(elapsed_ms >= 0.0);
                self.epochs.push((epoch, loss));
            }
            fn on_complete(&mut self, report: &TrainReport) {
                assert_eq!(report.epochs_run, self.epochs.len());
                self.completed = true;
            }
        }
        let mut ae = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let data = structured_data(64, 42);
        let cfg = TrainConfig { epochs: 4, batch_size: 32, seed: 3, early_stop_rel: None };
        let mut rec = Recorder { epochs: Vec::new(), batches: 0, completed: false };
        let report =
            fit_autoencoder_observed(&mut ae, &data, &cfg, &mut Adadelta::new(), &mut rec);
        assert!(rec.completed);
        assert_eq!(rec.epochs.len(), 4);
        // 64 rows / batch 32 = 2 batches per epoch × 4 epochs.
        assert_eq!(rec.batches, 8);
        for (i, &(epoch, loss)) in rec.epochs.iter().enumerate() {
            assert_eq!(epoch, i);
            assert_eq!(loss, report.epoch_losses[i]);
        }
    }

    #[test]
    fn observed_and_plain_training_agree() {
        let data = structured_data(64, 3);
        let cfg = TrainConfig { epochs: 3, batch_size: 16, seed: 11, early_stop_rel: None };
        let mut a = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let mut b = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let ra = fit_autoencoder(&mut a, &data, &cfg, &mut Adadelta::new());
        let rb = fit_autoencoder_observed(
            &mut b,
            &data,
            &cfg,
            &mut Adadelta::new(),
            &mut NoopObserver,
        );
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn deterministic_training() {
        let data = structured_data(64, 3);
        let cfg = TrainConfig { epochs: 3, batch_size: 16, seed: 11, early_stop_rel: None };
        let mut a = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let mut b = Autoencoder::new(AutoencoderConfig::small(8).with_seed(5));
        let ra = fit_autoencoder(&mut a, &data, &cfg, &mut Adadelta::new());
        let rb = fit_autoencoder(&mut b, &data, &cfg, &mut Adadelta::new());
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_data_rejected() {
        let mut ae = Autoencoder::new(AutoencoderConfig::small(4));
        let _ = fit_autoencoder(
            &mut ae,
            &Matrix::zeros(0, 4),
            &TrainConfig::default(),
            &mut Adadelta::new(),
        );
    }
}
