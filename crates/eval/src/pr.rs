//! Precision-recall curves — the metric the paper argues is more informative
//! than ROC on heavily imbalanced data (Section V-C, citing Saito &
//! Rehmsmeier).

use crate::ranking::ScenarioRanking;
use serde::{Deserialize, Serialize};

/// A precision-recall curve: one `(recall, precision)` point per retrieved
/// true positive, in investigation order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrCurve {
    /// `(recall, precision)` points.
    pub points: Vec<(f64, f64)>,
}

impl PrCurve {
    /// Builds the curve from a (possibly merged) ranking.
    pub fn from_ranking(ranking: &ScenarioRanking) -> Self {
        let p = ranking.positives() as f64;
        let points = ranking
            .fp_before_tp
            .iter()
            .enumerate()
            .map(|(i, &fp)| {
                let tp = (i + 1) as f64;
                (tp / p, tp / (tp + fp as f64))
            })
            .collect();
        PrCurve { points }
    }

    /// Average precision (area under the PR curve by the step rule).
    pub fn average_precision(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut ap = 0.0;
        let mut prev_recall = 0.0;
        for &(recall, precision) in &self.points {
            ap += (recall - prev_recall) * precision;
            prev_recall = recall;
        }
        ap
    }

    /// Maximum F1 score along the curve.
    pub fn best_f1(&self) -> f64 {
        self.points
            .iter()
            .map(|&(r, p)| if r + p > 0.0 { 2.0 * r * p / (r + p) } else { 0.0 })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let r = ScenarioRanking::from_counts(vec![0, 0], 50);
        let pr = PrCurve::from_ranking(&r);
        assert_eq!(pr.points, vec![(0.5, 1.0), (1.0, 1.0)]);
        assert_eq!(pr.average_precision(), 1.0);
        assert_eq!(pr.best_f1(), 1.0);
    }

    #[test]
    fn precision_degrades_with_fps() {
        let r = ScenarioRanking::from_counts(vec![0, 2], 50);
        let pr = PrCurve::from_ranking(&r);
        assert_eq!(pr.points[0], (0.5, 1.0));
        assert_eq!(pr.points[1], (1.0, 0.5)); // 2 TP / (2 TP + 2 FP)
        assert!((pr.average_precision() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn separates_models_that_roc_blurs() {
        // With 925 negatives, 1-vs-18 FPs barely moves ROC but wrecks
        // precision — the paper's core argument for Figure 6(b).
        let good = ScenarioRanking::from_counts(vec![0, 0, 0, 1], 925);
        let bad = ScenarioRanking::from_counts(vec![1, 1, 17, 18], 925);
        use crate::roc::RocCurve;
        let roc_gap = RocCurve::from_ranking(&good).auc() - RocCurve::from_ranking(&bad).auc();
        let pr_gap = PrCurve::from_ranking(&good).average_precision()
            - PrCurve::from_ranking(&bad).average_precision();
        assert!(roc_gap < 0.02, "{roc_gap}");
        assert!(pr_gap > 0.3, "{pr_gap}");
    }

    #[test]
    fn empty_curve() {
        let pr = PrCurve { points: vec![] };
        assert_eq!(pr.average_precision(), 0.0);
        assert_eq!(pr.best_f1(), 0.0);
    }
}
