//! Receiver-operating-characteristic curves over ranked outcomes.

use crate::ranking::ScenarioRanking;
use serde::{Deserialize, Serialize};

/// An ROC curve: `(false positive rate, true positive rate)` points in
/// investigation order, implicitly starting at `(0, 0)` and ending at
/// `(1, 1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// One point per true positive, as it is reached.
    pub points: Vec<(f64, f64)>,
}

impl RocCurve {
    /// Builds the curve from a (possibly merged) ranking.
    pub fn from_ranking(ranking: &ScenarioRanking) -> Self {
        let p = ranking.positives() as f64;
        let n = ranking.negatives.max(1) as f64;
        let points = ranking
            .fp_before_tp
            .iter()
            .enumerate()
            .map(|(i, &fp)| (fp as f64 / n, (i + 1) as f64 / p))
            .collect();
        RocCurve { points }
    }

    /// Area under the curve.
    ///
    /// With one point per positive, each retrieved positive contributes a
    /// horizontal strip of height `1/P` spanning `[FPR_i, 1]`:
    /// `AUC = (1/P) Σ (1 − FPR_i)`.
    pub fn auc(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let p = self.points.len() as f64;
        self.points.iter().map(|&(fpr, _)| 1.0 - fpr).sum::<f64>() / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_auc_is_one() {
        let r = ScenarioRanking::from_counts(vec![0, 0, 0], 100);
        let roc = RocCurve::from_ranking(&r);
        assert_eq!(roc.auc(), 1.0);
        assert_eq!(roc.points[2], (0.0, 1.0));
    }

    #[test]
    fn paper_acobe_numbers() {
        // ACOBE: 0, 0, 0, 1 FPs before the four TPs, 925 negatives.
        let r = ScenarioRanking::from_counts(vec![0, 0, 0, 1], 925);
        let auc = RocCurve::from_ranking(&r).auc();
        assert!(auc > 0.9997, "{auc}");
    }

    #[test]
    fn paper_baseline_numbers() {
        // Baseline: 1, 1, 17, 18 FPs.
        let r = ScenarioRanking::from_counts(vec![1, 1, 17, 18], 925);
        let auc = RocCurve::from_ranking(&r).auc();
        assert!(auc > 0.98 && auc < 0.995, "{auc}");
    }

    #[test]
    fn worst_ranking_low_auc() {
        let r = ScenarioRanking::from_counts(vec![100], 100);
        assert_eq!(RocCurve::from_ranking(&r).auc(), 0.0);
    }

    #[test]
    fn monotone_points() {
        let r = ScenarioRanking::from_counts(vec![0, 2, 2, 5], 10);
        let roc = RocCurve::from_ranking(&r);
        for pair in roc.points.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
    }
}
