//! Ranked-list evaluation over investigation lists.
//!
//! The paper evaluates per-scenario investigation lists with one abnormal
//! user each, merged into a single ROC / precision-recall analysis
//! (Section V-C). Ties between a false positive and a true positive list the
//! FP first — the worst-case investigation order.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One ranked user entry: `(user, priority)`, smaller priority first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedUser {
    /// User index.
    pub user: usize,
    /// Investigation priority (1-based; smaller = investigated earlier).
    pub priority: usize,
}

/// The outcome of one scenario: for every positive (abnormal) user, how many
/// negatives are investigated before them under worst-case tie ordering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioRanking {
    /// Per positive user: the number of false positives listed before them
    /// (ascending).
    pub fp_before_tp: Vec<usize>,
    /// Number of negative (normal) users in the scenario.
    pub negatives: usize,
}

impl ScenarioRanking {
    /// Builds from a ranked list and the set of abnormal users.
    ///
    /// A negative counts as "before" a positive when its priority is smaller
    /// **or equal** (worst-case tie order, as in the paper's Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if no entry is positive.
    pub fn new(list: &[RankedUser], positives: &HashSet<usize>) -> Self {
        let mut fp_before_tp = Vec::new();
        let negatives: Vec<usize> = list
            .iter()
            .filter(|e| !positives.contains(&e.user))
            .map(|e| e.priority)
            .collect();
        for entry in list {
            if positives.contains(&entry.user) {
                let fps = negatives.iter().filter(|&&p| p <= entry.priority).count();
                fp_before_tp.push(fps);
            }
        }
        assert!(!fp_before_tp.is_empty(), "no positive user in the ranked list");
        fp_before_tp.sort_unstable();
        ScenarioRanking { fp_before_tp, negatives: negatives.len() }
    }

    /// Builds directly from per-positive FP counts (for merged reporting).
    pub fn from_counts(fp_before_tp: Vec<usize>, negatives: usize) -> Self {
        let mut fp = fp_before_tp;
        fp.sort_unstable();
        ScenarioRanking { fp_before_tp: fp, negatives }
    }

    /// Number of positives.
    pub fn positives(&self) -> usize {
        self.fp_before_tp.len()
    }
}

/// Merges several scenarios into one evaluation, the paper's "the detection
/// metrics ... are put together" (Section V-A2).
///
/// Positives keep their per-scenario FP counts; the negative population is
/// the number of distinct normal users (supplied by the caller, 925 in the
/// paper).
///
/// # Panics
///
/// Panics if `scenarios` is empty or `distinct_negatives == 0`.
pub fn merge_scenarios(scenarios: &[ScenarioRanking], distinct_negatives: usize) -> ScenarioRanking {
    assert!(!scenarios.is_empty(), "no scenarios to merge");
    assert!(distinct_negatives > 0, "need at least one negative");
    let _span = acobe_obs::span!("eval_merge");
    acobe_obs::counter("eval/scenarios_merged").add(scenarios.len() as u64);
    let mut fp: Vec<usize> = scenarios
        .iter()
        .flat_map(|s| s.fp_before_tp.iter().copied())
        .collect();
    fp.sort_unstable();
    ScenarioRanking { fp_before_tp: fp, negatives: distinct_negatives }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(entries: &[(usize, usize)]) -> Vec<RankedUser> {
        entries
            .iter()
            .map(|&(user, priority)| RankedUser { user, priority })
            .collect()
    }

    #[test]
    fn counts_negatives_before_positive() {
        // Positive user 9 at priority 3; negatives at 1, 2, 5.
        let l = list(&[(0, 1), (1, 2), (9, 3), (2, 5)]);
        let positives: HashSet<usize> = [9].into();
        let r = ScenarioRanking::new(&l, &positives);
        assert_eq!(r.fp_before_tp, vec![2]);
        assert_eq!(r.negatives, 3);
    }

    #[test]
    fn ties_count_as_worst_case() {
        // Negative shares priority 2 with the positive: counted before.
        let l = list(&[(0, 2), (9, 2)]);
        let positives: HashSet<usize> = [9].into();
        let r = ScenarioRanking::new(&l, &positives);
        assert_eq!(r.fp_before_tp, vec![1]);
    }

    #[test]
    fn perfect_ranking_has_zero_fps() {
        let l = list(&[(9, 1), (0, 2), (1, 3)]);
        let positives: HashSet<usize> = [9].into();
        let r = ScenarioRanking::new(&l, &positives);
        assert_eq!(r.fp_before_tp, vec![0]);
    }

    #[test]
    fn merging_pools_positives() {
        let a = ScenarioRanking::from_counts(vec![0], 100);
        let b = ScenarioRanking::from_counts(vec![3], 100);
        let m = merge_scenarios(&[a, b], 100);
        assert_eq!(m.fp_before_tp, vec![0, 3]);
        assert_eq!(m.positives(), 2);
        assert_eq!(m.negatives, 100);
    }

    #[test]
    #[should_panic(expected = "no positive user")]
    fn missing_positive_panics() {
        let l = list(&[(0, 1)]);
        let _ = ScenarioRanking::new(&l, &HashSet::new());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// fp_before_tp is monotone non-decreasing and bounded by the
        /// negative count, regardless of the list shape.
        #[test]
        fn fp_counts_are_sane(
            priorities in prop::collection::vec(1usize..30, 5..40),
            positive_idx in 0usize..5,
        ) {
            let list: Vec<RankedUser> = priorities
                .iter()
                .enumerate()
                .map(|(user, &priority)| RankedUser { user, priority })
                .collect();
            let positives: HashSet<usize> = [positive_idx].into();
            let r = ScenarioRanking::new(&list, &positives);
            prop_assert_eq!(r.positives(), 1);
            prop_assert_eq!(r.negatives, priorities.len() - 1);
            prop_assert!(r.fp_before_tp[0] <= r.negatives);
        }

        /// Merging preserves the positive count and sorts ascending.
        #[test]
        fn merge_sorts(
            a in prop::collection::vec(0usize..100, 1..4),
            b in prop::collection::vec(0usize..100, 1..4),
        ) {
            let m = merge_scenarios(
                &[
                    ScenarioRanking::from_counts(a.clone(), 200),
                    ScenarioRanking::from_counts(b.clone(), 200),
                ],
                200,
            );
            prop_assert_eq!(m.positives(), a.len() + b.len());
            for pair in m.fp_before_tp.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
        }
    }
}
