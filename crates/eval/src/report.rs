//! Experiment output helpers: CSV series and aligned text tables.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Writes a CSV file with a header row and stringified cells.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Renders an aligned text table (for stdout reports).
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    };
    fmt_row(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Formats a float with fixed precision for tables/CSV.
pub fn fnum(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("acobe_eval_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_alignment() {
        let t = text_table(
            &["model", "auc"],
            &[
                vec!["acobe".into(), "0.9997".into()],
                vec!["baseline-long-name".into(), "0.99".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[3].starts_with("baseline-long-name"));
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(0.123456, 3), "0.123");
        assert_eq!(fnum(1.0, 4), "1.0000");
    }
}
