//! Evaluation metrics for the ACOBE reproduction.
//!
//! Implements the paper's Section V-C methodology over ordered investigation
//! lists:
//!
//! * [`ranking`] — per-scenario FP-before-TP analysis with worst-case tie
//!   ordering, and multi-scenario merging,
//! * [`roc`] — ROC curves and AUC (Figure 6(a)),
//! * [`pr`] — precision-recall curves, average precision, best F1
//!   (Figures 6(b) and 6(c)),
//! * [`report`] — CSV series and text-table output helpers.
//!
//! # Examples
//!
//! ```
//! use acobe_eval::ranking::ScenarioRanking;
//! use acobe_eval::roc::RocCurve;
//!
//! // ACOBE's reported outcome: 0,0,0,1 FPs before the four TPs.
//! let ranking = ScenarioRanking::from_counts(vec![0, 0, 0, 1], 925);
//! let auc = RocCurve::from_ranking(&ranking).auc();
//! assert!(auc > 0.999);
//! ```

#![warn(missing_docs)]

pub mod pr;
pub mod ranking;
pub mod report;
pub mod roc;

pub use pr::PrCurve;
pub use ranking::{merge_scenarios, RankedUser, ScenarioRanking};
pub use roc::RocCurve;
